#include "qac/cells/synthesizer.h"

#include <cmath>

#include "qac/util/logging.h"
#include "qac/util/rng.h"
#include "qac/util/simplex.h"

namespace qac::cells {

namespace {

/**
 * LP variable layout for a cell over n spins:
 *   columns [0, n)            shifted linear coefficients h'_i
 *   columns [n, n+P)          shifted quadratic coefficients J'_p
 *   column  n+P               shifted ground energy k'
 *   column  n+P+1             gap g
 * with h_i = h'_i + h_min, J = J' + j_min, k = k' - K.
 */
struct Layout
{
    size_t n;       ///< number of spins
    size_t pairs;   ///< n*(n-1)/2
    size_t cols;    ///< total LP columns
    double big_k;   ///< energy magnitude bound K

    explicit Layout(size_t num_spins, const ising::CoefficientRange &r)
        : n(num_spins), pairs(num_spins * (num_spins - 1) / 2),
          cols(num_spins + pairs + 2)
    {
        double hm = std::max(std::abs(r.h_min), std::abs(r.h_max));
        double jm = std::max(std::abs(r.j_min), std::abs(r.j_max));
        big_k = static_cast<double>(n) * hm +
            static_cast<double>(pairs) * jm + 1.0;
    }

    size_t kCol() const { return n + pairs; }
    size_t gCol() const { return n + pairs + 1; }

    size_t
    pairCol(size_t i, size_t j) const
    {
        if (i > j)
            std::swap(i, j);
        // Index of (i, j), i < j, in lexicographic pair order.
        size_t idx = i * n - i * (i + 1) / 2 + (j - i - 1);
        return n + idx;
    }
};

/** Spin assignment for full-row index: bit b -> spin b. */
ising::SpinVector
rowSpins(uint32_t row, size_t n)
{
    return ising::indexToSpins(row, n);
}

} // namespace

TruthTable
TruthTable::forGate(GateType type)
{
    const GateInfo &info = gateInfo(type);
    if (info.sequential)
        fatal("no combinational truth table for %s", info.name);
    TruthTable tt;
    tt.numInputs = info.inputs.size();
    tt.output.resize(size_t{1} << tt.numInputs);
    for (uint32_t in = 0; in < tt.output.size(); ++in)
        tt.output[in] = evalGate(type, in);
    return tt;
}

std::optional<SynthesizedCell>
synthesizeWithPattern(const TruthTable &tt, size_t num_ancillas,
                      const std::vector<uint32_t> &pattern,
                      const SynthesisOptions &opts)
{
    const size_t num_in = tt.numInputs;
    const size_t num_rows = size_t{1} << num_in;
    if (pattern.size() != num_rows)
        panic("pattern has %zu entries for %zu input rows",
              pattern.size(), num_rows);
    const size_t n = 1 + num_in + num_ancillas; // Y, inputs, ancillas
    const Layout lay(n, opts.range);

    const double h_span = opts.range.h_max - opts.range.h_min;
    const double j_span = opts.range.j_max - opts.range.j_min;

    std::vector<LpConstraint> cons;
    // One row per full spin assignment.  Spin order within the
    // assignment: [Y, inputs, ancillas] -> assignment bits 0..n-1.
    for (uint32_t full = 0; full < (1u << n); ++full) {
        auto spins = rowSpins(full, n);
        const bool y = ising::spinToBool(spins[0]);
        uint32_t in_bits = 0;
        for (size_t k = 0; k < num_in; ++k)
            if (ising::spinToBool(spins[1 + k]))
                in_bits |= (1u << k);
        uint32_t anc_bits = 0;
        for (size_t a = 0; a < num_ancillas; ++a)
            if (ising::spinToBool(spins[1 + num_in + a]))
                anc_bits |= (1u << a);

        const bool valid_io = (tt.output[in_bits] == y);
        const bool designated =
            valid_io && (num_ancillas == 0 || anc_bits == pattern[in_bits]);

        // E(full) in terms of shifted LP variables:
        //   sum h'_i s_i + sum J'_ij s_i s_j + const(full)
        LpConstraint con;
        con.coeffs.assign(lay.cols, 0.0);
        double c0 = 0.0;
        for (size_t i = 0; i < n; ++i) {
            con.coeffs[i] = spins[i];
            c0 += opts.range.h_min * spins[i];
        }
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
                double ss = spins[i] * spins[j];
                con.coeffs[lay.pairCol(i, j)] = ss;
                c0 += opts.range.j_min * ss;
            }
        }
        // E = lhs + c0; k = k' - K.
        if (designated) {
            // E = k  ->  lhs - k' = -K - c0
            con.coeffs[lay.kCol()] = -1.0;
            con.rel = Relation::EQ;
            con.rhs = -lay.big_k - c0;
        } else if (valid_io) {
            // E >= k  (non-designated ancilla values must not undercut)
            con.coeffs[lay.kCol()] = -1.0;
            con.rel = Relation::GE;
            con.rhs = -lay.big_k - c0;
        } else {
            // E >= k + g
            con.coeffs[lay.kCol()] = -1.0;
            con.coeffs[lay.gCol()] = -1.0;
            con.rel = Relation::GE;
            con.rhs = -lay.big_k - c0;
        }
        cons.push_back(std::move(con));
    }

    // Box constraints (upper bounds; lower bounds are x >= 0).
    auto addUpper = [&](size_t col, double ub) {
        LpConstraint con;
        con.coeffs.assign(lay.cols, 0.0);
        con.coeffs[col] = 1.0;
        con.rel = Relation::LE;
        con.rhs = ub;
        cons.push_back(std::move(con));
    };
    for (size_t i = 0; i < n; ++i)
        addUpper(i, h_span);
    for (size_t p = 0; p < lay.pairs; ++p)
        addUpper(lay.n + p, j_span);
    addUpper(lay.kCol(), 2.0 * lay.big_k);
    addUpper(lay.gCol(), 2.0 * lay.big_k);

    // Maximize the gap.
    std::vector<double> obj(lay.cols, 0.0);
    obj[lay.gCol()] = 1.0;

    LpResult lp = solveLp(lay.cols, obj, cons);
    if (lp.status != LpStatus::Optimal || lp.objective < opts.minGap)
        return std::nullopt;

    SynthesizedCell cell;
    cell.numAncillas = num_ancillas;
    cell.ancillaPattern = pattern;
    cell.H.resize(n);
    for (size_t i = 0; i < n; ++i) {
        double h = lp.x[i] + opts.range.h_min;
        if (std::abs(h) > 1e-9)
            cell.H.addLinear(static_cast<uint32_t>(i), h);
    }
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            double jj = lp.x[lay.pairCol(i, j)] + opts.range.j_min;
            if (std::abs(jj) > 1e-9)
                cell.H.addQuadratic(static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(j), jj);
        }
    }
    cell.groundEnergy = lp.x[lay.kCol()] - lay.big_k;
    cell.gap = lp.objective;
    return cell;
}

std::optional<SynthesizedCell>
synthesizeCell(const TruthTable &tt, const SynthesisOptions &opts)
{
    const size_t num_rows = size_t{1} << tt.numInputs;
    std::optional<SynthesizedCell> best;

    for (size_t anc = 0; anc <= opts.maxAncillas; ++anc) {
        const double pattern_bits =
            static_cast<double>(num_rows) * static_cast<double>(anc);
        const bool exhaustive = pattern_bits <= 10.0; // <= 1024 patterns

        auto consider = [&](const std::vector<uint32_t> &pattern) {
            auto got = synthesizeWithPattern(tt, anc, pattern, opts);
            if (got && (!best || got->gap > best->gap))
                best = std::move(got);
        };

        if (exhaustive) {
            uint64_t total = uint64_t{1} << static_cast<uint64_t>(
                pattern_bits);
            for (uint64_t pat = 0; pat < total; ++pat) {
                std::vector<uint32_t> pattern(num_rows);
                for (size_t r = 0; r < num_rows; ++r)
                    pattern[r] = static_cast<uint32_t>(
                        (pat >> (r * anc)) & ((1u << anc) - 1));
                consider(pattern);
            }
        } else {
            Rng rng(opts.seed);
            for (size_t t = 0; t < opts.maxRandomPatterns; ++t) {
                std::vector<uint32_t> pattern(num_rows);
                for (size_t r = 0; r < num_rows; ++r)
                    pattern[r] = static_cast<uint32_t>(
                        rng.below(uint64_t{1} << anc));
                consider(pattern);
            }
        }
        // Prefer the fewest ancillas that work at all (qubit economy),
        // matching the paper's presentation.
        if (best)
            return best;
    }
    return best;
}

size_t
countSolvablePatterns(const TruthTable &tt, size_t num_ancillas,
                      const SynthesisOptions &opts)
{
    const size_t num_rows = size_t{1} << tt.numInputs;
    const double pattern_bits =
        static_cast<double>(num_rows) * static_cast<double>(num_ancillas);
    if (pattern_bits > 20.0)
        fatal("pattern space too large to enumerate (%g bits)",
              pattern_bits);
    uint64_t total = uint64_t{1} << static_cast<uint64_t>(pattern_bits);
    size_t solvable = 0;
    for (uint64_t pat = 0; pat < total; ++pat) {
        std::vector<uint32_t> pattern(num_rows);
        for (size_t r = 0; r < num_rows; ++r)
            pattern[r] = static_cast<uint32_t>(
                (pat >> (r * num_ancillas)) &
                ((uint64_t{1} << num_ancillas) - 1));
        if (synthesizeWithPattern(tt, num_ancillas, pattern, opts))
            ++solvable;
    }
    return solvable;
}

CellHamiltonian
toCellHamiltonian(GateType type, const SynthesizedCell &cell)
{
    const GateInfo &info = gateInfo(type);
    CellHamiltonian out;
    out.type = type;
    out.varNames.push_back(info.output);
    for (const auto &in : info.inputs)
        out.varNames.push_back(in);
    for (size_t a = 0; a < cell.numAncillas; ++a)
        out.varNames.push_back(format("$anc%zu", a));
    out.H = cell.H;
    std::string err;
    if (!verifyCell(out, &err))
        panic("synthesized cell for %s failed verification: %s",
              info.name, err.c_str());
    return out;
}

} // namespace qac::cells
