#include "qac/stats/registry.h"

#include <algorithm>
#include <cmath>

#include "qac/stats/trace.h"
#include "qac/util/logging.h"

namespace qac::stats {

void
Distribution::record(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sumsq_ += v * v;
    if (reservoir_.size() < kReservoirCap) {
        reservoir_.push_back(v);
    } else {
        // Algorithm R: sample number count_ replaces a random slot
        // with probability cap/count_, keeping the reservoir a uniform
        // sample of everything seen.  The xorshift is seeded with a
        // constant, never a random device, so identical recording
        // sequences always report identical quantiles.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        uint64_t j = rng_ % count_;
        if (j < kReservoirCap)
            reservoir_[j] = v;
    }
}

Distribution::Summary
Distribution::summary() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Summary s;
    s.count = count_;
    if (count_ == 0)
        return s;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.mean = sum_ / static_cast<double>(count_);
    double var = sumsq_ / static_cast<double>(count_) - s.mean * s.mean;
    s.stddev = var > 0 ? std::sqrt(var) : 0.0;
    if (!reservoir_.empty()) {
        std::vector<double> sorted(reservoir_);
        std::sort(sorted.begin(), sorted.end());
        auto quantile = [&sorted](double p) {
            double idx =
                p * static_cast<double>(sorted.size() - 1);
            size_t lo = static_cast<size_t>(idx);
            size_t hi = std::min(lo + 1, sorted.size() - 1);
            double frac = idx - static_cast<double>(lo);
            return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
        };
        s.p50 = quantile(0.50);
        s.p99 = quantile(0.99);
    }
    return s;
}

struct Registry::Entry
{
    MetricKind kind;
    Counter counter;
    Distribution distribution;
    Timer timer;
};

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

bool
Registry::setEnabled(bool enabled)
{
    return enabled_.exchange(enabled, std::memory_order_relaxed);
}

Registry::Entry &
Registry::entry(const std::string &path, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it == entries_.end()) {
        auto e = std::make_unique<Entry>();
        e->kind = kind;
        it = entries_.emplace(path, std::move(e)).first;
    } else if (it->second->kind != kind) {
        panic("stats metric '%s' registered with conflicting kinds",
              path.c_str());
    }
    return *it->second;
}

Counter &
Registry::counter(const std::string &path)
{
    return entry(path, MetricKind::Counter).counter;
}

Distribution &
Registry::distribution(const std::string &path)
{
    return entry(path, MetricKind::Distribution).distribution;
}

Timer &
Registry::timer(const std::string &path)
{
    return entry(path, MetricKind::Timer).timer;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

std::vector<Metric>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Metric> out;
    out.reserve(entries_.size());
    for (const auto &[path, e] : entries_) {
        Metric m;
        m.path = path;
        m.kind = e->kind;
        switch (e->kind) {
          case MetricKind::Counter:
            m.count = e->counter.value();
            break;
          case MetricKind::Timer:
            m.count = e->timer.calls();
            m.total_ns = e->timer.totalNs();
            break;
          case MetricKind::Distribution:
            m.dist = e->distribution.summary();
            m.count = m.dist.count;
            break;
        }
        out.push_back(std::move(m));
    }
    // std::map iteration is already path-sorted; keep the guarantee
    // explicit in case the container ever changes.
    std::sort(out.begin(), out.end(),
              [](const Metric &a, const Metric &b) { return a.path < b.path; });
    return out;
}

void
count(const std::string &path, uint64_t n)
{
    Registry &r = Registry::global();
    if (!r.enabled())
        return;
    r.counter(path).add(n);
}

void
gauge(const std::string &path, uint64_t value)
{
    Registry &r = Registry::global();
    if (!r.enabled())
        return;
    r.counter(path).set(value);
}

void
record(const std::string &path, double value)
{
    Registry &r = Registry::global();
    if (!r.enabled())
        return;
    r.distribution(path).record(value);
}

ScopedTimer::ScopedTimer(const char *path) : path_(path)
{
    timing_ = Registry::global().enabled();
    tracing_ = Trace::global().enabled();
    if (timing_ || tracing_)
        start_ns_ = Trace::nowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (!timing_ && !tracing_)
        return;
    uint64_t dur = Trace::nowNs() - start_ns_;
    if (timing_)
        Registry::global().timer(path_).addNs(dur);
    if (tracing_)
        Trace::global().complete(path_, start_ns_, dur);
}

} // namespace qac::stats
