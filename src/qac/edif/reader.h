/**
 * @file
 * EDIF 2.0.0 netlist reader.
 *
 * Parses the EDIF dialect produced by writer.h (which mirrors Yosys
 * output) back into a gate-level Netlist, reconstructing multi-bit ports
 * from their (rename ident "name[i]") originals and lowering GND/VCC
 * instances onto the constant nets.  This is the paper's edif2qmasm
 * input stage: "An EDIF netlist is represented by a single, large
 * s-expression, which makes it easy to parse mechanically."
 */

#ifndef QAC_EDIF_READER_H
#define QAC_EDIF_READER_H

#include <string>

#include "qac/netlist/netlist.h"
#include "qac/sexpr/sexpr.h"

namespace qac::edif {

/** Parse EDIF text into a netlist. Throws FatalError on malformed input. */
netlist::Netlist readEdif(const std::string &edif_text);

/** As readEdif but from an already parsed s-expression. */
netlist::Netlist fromSExpr(const sexpr::Node &root);

} // namespace qac::edif

#endif // QAC_EDIF_READER_H
