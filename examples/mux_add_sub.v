// Selectable add/subtract unit: Y = sel ? A - B : A + B.
// Exercises mux, adder, and inverter synthesis in one small design.
//   qacc examples/mux_add_sub.v --stats --trace-json=trace.json
module mux_add_sub (A, B, sel, Y);
  input [2:0] A, B;
  input sel;
  output [3:0] Y;
  assign Y = sel ? (A - B) : (A + B);
endmodule
