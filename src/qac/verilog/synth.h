/**
 * @file
 * Verilog -> gate-netlist synthesis (the Yosys role in the paper's flow,
 * Section 4.2).
 *
 * Elaborates the design from a top module, flattens the instance
 * hierarchy, and bit-blasts every expression into NOT/AND/OR/XOR/MUX/DFF
 * gates: ripple-carry adders, array multipliers, restoring dividers,
 * borrow comparators, barrel shifters, and mux trees.  Clocked always
 * blocks become D flip-flops via symbolic execution of the statement
 * tree (if/case -> mux trees); the unroll pass (netlist/unroll.h) later
 * trades their time dimension for space per Section 4.3.3.
 *
 * Subset notes: unsigned two-valued semantics; no inout ports, no
 * ascending ranges, no delays/events, no initial blocks, no
 * unbounded-trip-count loops (the paper lists the same limitation).
 */

#ifndef QAC_VERILOG_SYNTH_H
#define QAC_VERILOG_SYNTH_H

#include <string>

#include "qac/netlist/netlist.h"
#include "qac/verilog/ast.h"
#include "qac/verilog/elaborate.h"

namespace qac::verilog {

struct SynthOptions
{
    /** Parameter overrides for the top module. */
    ParamEnv top_params;
};

/**
 * Synthesize @p top from @p design into a flat gate-level netlist.
 * The caller typically follows with netlist::optimize() and
 * netlist::techMap().
 */
netlist::Netlist synthesize(const Design &design, const std::string &top,
                            const SynthOptions &opts = {});

/** Parse-and-synthesize convenience wrapper. */
netlist::Netlist synthesizeSource(const std::string &verilog_source,
                                  const std::string &top,
                                  const SynthOptions &opts = {});

} // namespace qac::verilog

#endif // QAC_VERILOG_SYNTH_H
