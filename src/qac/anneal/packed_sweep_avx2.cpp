/**
 * @file
 * AVX2 packed sweep engine (DESIGN.md §13).
 *
 * Compiled with -mavx2 and nothing more when QAC_ENABLE_AVX2 is on —
 * deliberately NOT -mfma: without FMA instructions the compiler
 * cannot contract a*b+c, so every vector multiply/add/compare here
 * has bit-identical IEEE semantics to the scalar engine's arithmetic.
 * That, plus an exact shift-add vector xoshiro step (×5 and ×9 are
 * shift+add; the u64→f64 conversion is exact below 2^53), is what
 * lets engine selection stay invisible in results.
 *
 * When QAC_ENABLE_AVX2 is off this TU compiles to a stub that reports
 * the engine absent.
 */

#include "qac/anneal/packed_sweep.h"

#if defined(QAC_PACKED_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <limits>

#include "qac/anneal/metropolis.h"

namespace qac::anneal {

namespace {

constexpr uint32_t kLanes = ising::PackedState::kLanes;
constexpr int kGroups = static_cast<int>(kLanes) / 4;

/** Candidates at or above this popcount draw via the lockstep vector
 *  path; sparser masks iterate set bits scalar-wise.  Either path is
 *  bit-identical per lane, so the cut is pure tuning. */
constexpr int kVectorDrawCut = 12;
/** Same idea for the batched flip application. */
constexpr int kVectorApplyCut = 6;

/** All-ones lane mask for the 4 lanes of group @p g whose bit is set
 *  in @p mask. */
inline __m256i
laneMask4(uint64_t mask, int g)
{
    const __m256i sel = _mm256_set_epi64x(8, 4, 2, 1);
    const __m256i m = _mm256_set1_epi64x(
        static_cast<long long>((mask >> (4 * g)) & 0xf));
    return _mm256_cmpeq_epi64(_mm256_and_si256(m, sel), sel);
}

/** Exact u64 → f64 for values below 2^53 (we convert next() >> 11). */
inline __m256d
u64ToDouble(__m256i v)
{
    // Magic-number split: hi32*2^32 via the 2^84 exponent window, lo32
    // via the 2^52 window; both parts and their sum are exact for
    // v < 2^53.
    __m256i hi = _mm256_srli_epi64(v, 32);
    hi = _mm256_or_si256(
        hi, _mm256_castpd_si256(
                _mm256_set1_pd(19342813113834066795298816.))); // 2^84
    const __m256i lo = _mm256_blend_epi16(
        v,
        _mm256_castpd_si256(_mm256_set1_pd(4503599627370496.)), // 2^52
        0xcc);
    const __m256d f = _mm256_sub_pd(
        _mm256_castsi256_pd(hi),
        _mm256_set1_pd(19342813118337666422669312.)); // 2^84 + 2^52
    return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
}

/**
 * Lockstep draw + Metropolis decision for one 4-lane group.  Steps
 * the group's four xoshiro states vectorized, commits new state only
 * for candidate lanes, and returns the 4-bit accept mask.  Gap lanes
 * (squeeze undecided) fall back to the scalar exp test on the same
 * uniform.
 */
inline int
drawGroup4(LaneRngs &rngs, int g, int cand_nib, const double *di,
           __m256d beta_v)
{
    const int base = 4 * g;
    // cand_nib is already shifted down to the low 4 bits, so select
    // against group 0 of it.
    const __m256i cm = laneMask4(static_cast<uint64_t>(cand_nib), 0);

    __m256i s0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(&rngs.s[0][base]));
    __m256i s1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(&rngs.s[1][base]));
    __m256i s2 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(&rngs.s[2][base]));
    __m256i s3 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(&rngs.s[3][base]));
    const __m256i os0 = s0, os1 = s1, os2 = s2, os3 = s3;

    // result = rotl(s1 * 5, 7) * 9, with ×5 and ×9 as exact shift+add.
    const __m256i r5 =
        _mm256_add_epi64(_mm256_slli_epi64(s1, 2), s1);
    const __m256i rot = _mm256_or_si256(_mm256_slli_epi64(r5, 7),
                                        _mm256_srli_epi64(r5, 57));
    const __m256i result =
        _mm256_add_epi64(_mm256_slli_epi64(rot, 3), rot);

    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45),
                         _mm256_srli_epi64(s3, 19));

    // Only candidate lanes consumed a draw; the rest keep their state.
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(&rngs.s[0][base]),
                        _mm256_blendv_epi8(os0, s0, cm));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(&rngs.s[1][base]),
                        _mm256_blendv_epi8(os1, s1, cm));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(&rngs.s[2][base]),
                        _mm256_blendv_epi8(os2, s2, cm));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(&rngs.s[3][base]),
                        _mm256_blendv_epi8(os3, s3, cm));

    const __m256d u =
        _mm256_mul_pd(u64ToDouble(_mm256_srli_epi64(result, 11)),
                      _mm256_set1_pd(0x1.0p-53));

    // metropolisAcceptU, vectorized with the identical expression
    // shapes: t = 1 - 0.5*x; below = (t > 0) & (u < t*t);
    // above = u * ((1 + x) + (0.5*x)*x) >= 1.
    const __m256d x =
        _mm256_mul_pd(beta_v, _mm256_loadu_pd(di + base));
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d tt = _mm256_sub_pd(one, _mm256_mul_pd(half, x));
    const __m256d below = _mm256_and_pd(
        _mm256_cmp_pd(tt, _mm256_setzero_pd(), _CMP_GT_OQ),
        _mm256_cmp_pd(u, _mm256_mul_pd(tt, tt), _CMP_LT_OQ));
    const __m256d poly = _mm256_add_pd(
        _mm256_add_pd(one, x),
        _mm256_mul_pd(_mm256_mul_pd(half, x), x));
    const __m256d above =
        _mm256_cmp_pd(_mm256_mul_pd(u, poly), one, _CMP_GE_OQ);

    int accept_nib = _mm256_movemask_pd(below) & cand_nib;
    int gap = cand_nib &
              ~_mm256_movemask_pd(_mm256_or_pd(below, above));
    if (gap != 0) {
        // Rare mid-squeeze draws: same uniform, scalar tail.
        alignas(32) double ua[4], xa[4];
        _mm256_storeu_pd(ua, u);
        _mm256_storeu_pd(xa, x);
        for (; gap != 0; gap &= gap - 1) {
            const int e = __builtin_ctz(static_cast<unsigned>(gap));
            if (metropolisAcceptTail(ua[e], xa[e]))
                accept_nib |= 1 << e;
        }
    }
    return accept_nib;
}

} // namespace

bool
packedSweepAvx2Compiled()
{
    return true;
}

uint64_t
packedSweepAvx2(ising::PackedState &state, LaneRngs &rngs, double beta,
                double thresh)
{
    const auto &model = state.model();
    const uint32_t n = static_cast<uint32_t>(model.numVars());
    const uint32_t *nbr = model.neighbors().data();
    const double *w = model.weights().data();
    const uint32_t *row = model.rowOffsets().data();
    double *min_delta = state.minDelta();
    double *delta = state.deltaPlane();
    uint64_t *bits = state.spinBits();
    uint64_t *flip_ctr = state.laneFlipCounters();

    const __m256d thresh_v = _mm256_set1_pd(thresh);
    const __m256d beta_v = _mm256_set1_pd(beta);
    const __m256d sign_v = _mm256_set1_pd(-0.0);
    const double inf = std::numeric_limits<double>::infinity();

    uint64_t drew = 0;
    for (uint32_t i = 0; i < n; ++i) {
        if (min_delta[i] >= thresh)
            continue;
        double *di = delta + size_t{i} * kLanes;

        // ---- candidate scan + exact min refresh
        uint64_t mask = 0;
        __m256d mn_v = _mm256_set1_pd(inf);
        for (int g = 0; g < kGroups; ++g) {
            const __m256d d = _mm256_loadu_pd(di + 4 * g);
            mask |= static_cast<uint64_t>(_mm256_movemask_pd(
                        _mm256_cmp_pd(d, thresh_v, _CMP_LT_OQ)))
                    << (4 * g);
            mn_v = _mm256_min_pd(mn_v, d);
        }
        {
            const __m128d lo = _mm256_castpd256_pd128(mn_v);
            const __m128d hi = _mm256_extractf128_pd(mn_v, 1);
            const __m128d m2 = _mm_min_pd(lo, hi);
            const __m128d m1 =
                _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
            min_delta[i] = _mm_cvtsd_f64(m1);
        }
        if (mask == 0)
            continue;
        drew |= mask;

        // ---- per-lane draws → accept mask
        uint64_t accept = 0;
        if (__builtin_popcountll(mask) >= kVectorDrawCut) {
            for (int g = 0; g < kGroups; ++g) {
                const int nib =
                    static_cast<int>((mask >> (4 * g)) & 0xf);
                if (nib == 0)
                    continue;
                accept |= static_cast<uint64_t>(
                              drawGroup4(rngs, g, nib, di, beta_v))
                          << (4 * g);
            }
        } else {
            for (uint64_t m = mask; m != 0; m &= m - 1) {
                const unsigned l =
                    static_cast<unsigned>(__builtin_ctzll(m));
                const double u = rngs.uniform(l);
                accept |=
                    uint64_t{metropolisAcceptU(u, beta * di[l])} << l;
            }
        }
        if (accept == 0)
            continue;

        // ---- batched flip application
        if (__builtin_popcountll(accept) < kVectorApplyCut) {
            state.applyFlips(i, accept);
            continue;
        }
        for (uint64_t m = accept; m != 0; m &= m - 1)
            ++flip_ctr[__builtin_ctzll(m)];
        // Active groups and their accept lane masks, once per flip set.
        int groups[kGroups];
        __m256i amask[kGroups];
        int ngroups = 0;
        for (int g = 0; g < kGroups; ++g) {
            if (((accept >> (4 * g)) & 0xf) != 0) {
                groups[ngroups] = g;
                amask[ngroups] = laneMask4(accept, g);
                ++ngroups;
            }
        }
        // Negate the flipped lanes' own deltas (delta_i → -delta_i).
        for (int a = 0; a < ngroups; ++a) {
            const int g = groups[a];
            const __m256d old = _mm256_loadu_pd(di + 4 * g);
            const __m256d neg = _mm256_xor_pd(old, sign_v);
            _mm256_storeu_pd(
                di + 4 * g,
                _mm256_blendv_pd(old, neg,
                                 _mm256_castsi256_pd(amask[a])));
        }
        const uint64_t bits_new = (bits[i] ^= accept);
        const uint32_t end = row[i + 1];
        for (uint32_t k = row[i]; k < end; ++k) {
            const uint32_t j = nbr[k];
            // Same-spin lanes gain -4w, differing lanes +4w — the
            // exact values LocalFieldState::flip adds (see
            // PackedState::applyFlips); the sign select is an XOR of
            // the sign bit, exact for signed zeros too.
            const __m256d w4_v = _mm256_set1_pd(-4.0 * w[k]);
            const uint64_t differ = bits_new ^ bits[j];
            double *dj = delta + size_t{j} * kLanes;
            for (int a = 0; a < ngroups; ++a) {
                const int g = groups[a];
                const __m256d dm = _mm256_castsi256_pd(
                    laneMask4(differ, g));
                const __m256d addend =
                    _mm256_xor_pd(w4_v, _mm256_and_pd(dm, sign_v));
                const __m256d old = _mm256_loadu_pd(dj + 4 * g);
                const __m256d upd = _mm256_add_pd(old, addend);
                _mm256_storeu_pd(
                    dj + 4 * g,
                    _mm256_blendv_pd(old, upd,
                                     _mm256_castsi256_pd(amask[a])));
            }
            min_delta[j] = -inf;
        }
        min_delta[i] = -inf;
    }
    return drew;
}

} // namespace qac::anneal

#else // stub build: engine absent

#include "qac/util/logging.h"

namespace qac::anneal {

bool
packedSweepAvx2Compiled()
{
    return false;
}

uint64_t
packedSweepAvx2(ising::PackedState &, LaneRngs &, double, double)
{
    panic("packedSweepAvx2: built without QAC_ENABLE_AVX2");
}

} // namespace qac::anneal

#endif
