#include "qac/ising/compiled.h"

#include <algorithm>
#include <numeric>

#include "qac/util/logging.h"

namespace qac::ising {

CompiledModel::CompiledModel(const IsingModel &model)
    : h_(model.numVars(), 0.0), row_(model.numVars() + 1, 0)
{
    const size_t n = model.numVars();
    for (uint32_t i = 0; i < n; ++i)
        h_[i] = model.linear(i);

    // sortedQuadraticTerms is deterministic regardless of the source
    // hash map's iteration order, so two compilations of equal models
    // produce bit-identical CSR arrays.
    const auto terms = model.sortedQuadraticTerms();

    // Counting pass: degree of every variable.
    for (const auto &t : terms) {
        ++row_[t.i + 1];
        ++row_[t.j + 1];
    }
    std::partial_sum(row_.begin(), row_.end(), row_.begin());

    nbr_.resize(row_[n]);
    w_.resize(row_[n]);
    std::vector<uint32_t> fill(row_.begin(), row_.end() - 1);
    for (const auto &t : terms) {
        nbr_[fill[t.i]] = t.j;
        w_[fill[t.i]++] = t.value;
        nbr_[fill[t.j]] = t.i;
        w_[fill[t.j]++] = t.value;
    }

    // Sort each row by neighbor index: deterministic summation order
    // and slightly friendlier access patterns.
    for (uint32_t i = 0; i < n; ++i) {
        const uint32_t lo = row_[i], hi = row_[i + 1];
        max_degree_ = std::max(max_degree_, hi - lo);
        std::vector<std::pair<uint32_t, double>> tmp;
        tmp.reserve(hi - lo);
        for (uint32_t k = lo; k < hi; ++k)
            tmp.emplace_back(nbr_[k], w_[k]);
        std::sort(tmp.begin(), tmp.end());
        for (uint32_t k = lo; k < hi; ++k) {
            nbr_[k] = tmp[k - lo].first;
            w_[k] = tmp[k - lo].second;
        }
    }
}

double
CompiledModel::energy(const SpinVector &spins) const
{
    if (spins.size() != h_.size())
        panic("CompiledModel::energy: %zu spins for %zu variables",
              spins.size(), h_.size());
    // E = sum_i s_i (h_i + f_i) / 2 + sum_i s_i h_i / 2
    //   = sum_i s_i (h_i + 0.5 * (f_i - h_i))   with f_i the local
    // field; the quadratic part is halved because each edge appears in
    // both endpoint rows.
    double e = 0.0;
    const uint32_t *nbr = nbr_.data();
    const double *w = w_.data();
    for (uint32_t i = 0; i < h_.size(); ++i) {
        double coupled = 0.0;
        const uint32_t end = row_[i + 1];
        for (uint32_t k = row_[i]; k < end; ++k)
            coupled += w[k] * spins[nbr[k]];
        e += spins[i] * (h_[i] + 0.5 * coupled);
    }
    return e;
}

double
CompiledModel::localField(const SpinVector &spins, uint32_t i) const
{
    double f = h_[i];
    const uint32_t *nbr = nbr_.data();
    const double *w = w_.data();
    const uint32_t end = row_[i + 1];
    for (uint32_t k = row_[i]; k < end; ++k)
        f += w[k] * spins[nbr[k]];
    return f;
}

void
LocalFieldState::reset(const SpinVector &spins)
{
    if (spins.size() != model_->numVars())
        panic("LocalFieldState::reset: %zu spins for %zu variables",
              spins.size(), model_->numVars());
    spins_ = spins;
    for (uint32_t i = 0; i < spins_.size(); ++i)
        delta_[i] = -2.0 * spins_[i] * model_->localField(spins_, i);
    energy_fresh_ = false;
}

void
LocalFieldState::adopt(SpinVector spins, std::vector<double> deltas,
                       uint64_t flips)
{
    if (spins.size() != model_->numVars() ||
        deltas.size() != model_->numVars())
        panic("LocalFieldState::adopt: %zu spins / %zu deltas for %zu "
              "variables",
              spins.size(), deltas.size(), model_->numVars());
    spins_ = std::move(spins);
    delta_ = std::move(deltas);
    flips_ = flips;
    energy_fresh_ = false;
}

void
LocalFieldState::recomputeEnergy() const
{
    // H = sum_i s_i (h_i + f_i) / 2 with s_i f_i = -delta_i / 2 (the
    // quadratic part of f_i is halved because each edge contributes to
    // both endpoint fields).
    double e = 0.0;
    const double *h = model_->h_.data();
    for (uint32_t i = 0; i < spins_.size(); ++i)
        e += 0.5 * spins_[i] * h[i] - 0.25 * delta_[i];
    energy_ = e;
    energy_fresh_ = true;
}

} // namespace qac::ising
