/**
 * @file
 * Quantifies the artifact subsystem: cold-vs-warm Chimera-target
 * compile time (a warm compile loads its minor embedding from the
 * content-addressed cache and skips minorminer entirely), plus the raw
 * .qo serialize/deserialize throughput.
 *
 * The run fails (nonzero exit) if the warm pass records no cache hit —
 * the bench doubles as an end-to-end check that transparent caching
 * actually engages.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "qac/artifact/cache.h"
#include "qac/artifact/qo.h"
#include "qac/core/compiler.h"
#include "qac/stats/registry.h"
#include "qac/util/logging.h"

#include "bench_stats.h"

namespace {

using namespace qac;

namespace fs = std::filesystem;

// A 3x3 multiplier is the smallest design whose embedding dominates
// its compile; smoke mode drops to the 2x2 version.
std::string
multiplierSource(unsigned bits)
{
    return format("module mult (A, B, C);\n"
                  "  input [%u:0] A, B;\n"
                  "  output [%u:0] C;\n"
                  "  assign C = A * B;\n"
                  "endmodule\n",
                  bits - 1, 2 * bits - 1);
}

std::string
freshCacheDir()
{
    fs::path dir = fs::temp_directory_path() /
        format("qac-bench-cache.%d", static_cast<int>(::getpid()));
    fs::remove_all(dir);
    return dir.string();
}

core::CompileOptions
chimeraOptions(const std::string &cache_dir)
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "mult";
    opts.target = core::Target::Chimera;
    opts.chimera_size = benchstats::smoke() ? 8 : 16;
    opts.cache.enabled = !cache_dir.empty();
    opts.cache.dir = cache_dir;
    return opts;
}

uint64_t
cacheHits()
{
    for (const auto &m : stats::Registry::global().snapshot())
        if (m.path == "qac.cache.hit")
            return m.count;
    return 0;
}

/** Cold vs warm compile; returns the measured speedup. */
double
printColdWarm(const std::string &src, const std::string &cache_dir,
              bool *warm_hit)
{
    auto now = [] {
        return std::chrono::steady_clock::now();
    };
    auto ms = [](auto a, auto b) {
        return std::chrono::duration<double, std::milli>(b - a)
            .count();
    };

    auto t0 = now();
    auto cold = core::compile(src, chimeraOptions(cache_dir));
    auto t1 = now();
    uint64_t hits_before = cacheHits();
    auto warm = core::compile(src, chimeraOptions(cache_dir));
    auto t2 = now();
    *warm_hit = cacheHits() > hits_before;

    double cold_ms = ms(t0, t1), warm_ms = ms(t1, t2);
    double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
    std::printf("--- artifact cache: cold vs warm compile "
                "(%zu logical vars, C%u) ---\n",
                cold.assembled.model.numVars(),
                benchstats::smoke() ? 8u : 16u);
    std::printf("%12s %12s %10s %10s\n", "cold (ms)", "warm (ms)",
                "speedup", "warm hit");
    std::printf("%12.1f %12.1f %9.1fx %10s\n", cold_ms, warm_ms,
                speedup, *warm_hit ? "yes" : "NO");
    std::printf("(warm compiles load the chain map by content address "
                "and never enter minorminer)\n\n");
    stats::gauge("bench.cache.cold_ms",
                 static_cast<uint64_t>(cold_ms));
    stats::gauge("bench.cache.warm_ms",
                 static_cast<uint64_t>(warm_ms < 1 ? 1 : warm_ms));
    (void)warm;
    return speedup;
}

void
BM_ColdCompile(benchmark::State &state)
{
    std::string src = multiplierSource(benchstats::smoke() ? 2 : 3);
    for (auto _ : state) {
        // No cache: every iteration pays the embedder.
        benchmark::DoNotOptimize(
            core::compile(src, chimeraOptions("")));
    }
}
BENCHMARK(BM_ColdCompile)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_WarmCompile(benchmark::State &state)
{
    std::string src = multiplierSource(benchstats::smoke() ? 2 : 3);
    std::string dir = freshCacheDir() + ".bm";
    core::compile(src, chimeraOptions(dir)); // prime
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::compile(src, chimeraOptions(dir)));
    fs::remove_all(dir);
}
BENCHMARK(BM_WarmCompile)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_QoSerialize(benchmark::State &state)
{
    std::string src = multiplierSource(benchstats::smoke() ? 2 : 3);
    auto compiled = core::compile(src, chimeraOptions(""));
    size_t bytes = 0;
    for (auto _ : state) {
        auto blob = artifact::serializeQo(compiled);
        bytes = blob.size();
        benchmark::DoNotOptimize(blob);
    }
    state.SetLabel(format("%zu bytes", bytes));
}
BENCHMARK(BM_QoSerialize)->Unit(benchmark::kMicrosecond);

void
BM_QoDeserialize(benchmark::State &state)
{
    std::string src = multiplierSource(benchstats::smoke() ? 2 : 3);
    auto blob =
        artifact::serializeQo(core::compile(src, chimeraOptions("")));
    for (auto _ : state)
        benchmark::DoNotOptimize(artifact::deserializeQo(blob));
}
BENCHMARK(BM_QoDeserialize)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("artifact_cache");

    std::string src = multiplierSource(benchstats::smoke() ? 2 : 3);
    std::string dir = freshCacheDir();
    bool warm_hit = false;
    printColdWarm(src, dir, &warm_hit);
    fs::remove_all(dir);
    if (!warm_hit) {
        std::fprintf(stderr, "bench_artifact_cache: warm compile "
                             "recorded no cache hit\n");
        return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
