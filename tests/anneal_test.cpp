/**
 * @file
 * Tests for the samplers: exact enumeration, simulated annealing,
 * path-integral SQA, the chain-flip annealer, and greedy descent.
 * Stochastic samplers are cross-checked against the exact solver on
 * seeded random instances.
 */

#include <gtest/gtest.h>

#include "qac/anneal/chainflip.h"
#include "qac/anneal/descent.h"
#include "qac/anneal/exact.h"
#include "qac/anneal/pathintegral.h"
#include "qac/anneal/simulated.h"
#include "qac/util/logging.h"
#include "qac/util/rng.h"

namespace qac::anneal {
namespace {

using ising::IsingModel;
using ising::SpinVector;

IsingModel
randomModel(Rng &rng, size_t n, double density = 0.5)
{
    IsingModel m(n);
    for (uint32_t i = 0; i < n; ++i)
        if (rng.chance(0.7))
            m.addLinear(i, rng.uniform() * 2 - 1);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = i + 1; j < n; ++j)
            if (rng.chance(density))
                m.addQuadratic(i, j, rng.uniform() * 2 - 1);
    return m;
}

// ---------------------------------------------------------------- exact

TEST(Exact, FerromagneticPair)
{
    IsingModel m(2);
    m.addQuadratic(0, 1, -1.0);
    auto res = ExactSolver().solve(m);
    EXPECT_DOUBLE_EQ(res.min_energy, -1.0);
    ASSERT_EQ(res.ground_states.size(), 2u); // ++ and --
}

TEST(Exact, FrustratedTriangle)
{
    // All antiferromagnetic: 6 degenerate ground states at E = -1.
    IsingModel m(3);
    m.addQuadratic(0, 1, 1.0);
    m.addQuadratic(1, 2, 1.0);
    m.addQuadratic(0, 2, 1.0);
    auto res = ExactSolver().solve(m);
    EXPECT_DOUBLE_EQ(res.min_energy, -1.0);
    EXPECT_EQ(res.ground_states.size(), 6u);
}

TEST(Exact, MatchesBruteForce)
{
    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        IsingModel m = randomModel(rng, 10);
        auto res = ExactSolver().solve(m);
        double want = 1e300;
        for (uint64_t k = 0; k < 1024; ++k)
            want = std::min(want, m.energy(ising::indexToSpins(k, 10)));
        EXPECT_NEAR(res.min_energy, want, 1e-9);
        for (const auto &gs : res.ground_states)
            EXPECT_NEAR(m.energy(gs), want, 1e-9);
    }
}

TEST(Exact, VarLimitEnforcedPerComponent)
{
    // The 2^n wall applies to the largest *connected component*: a
    // 5-variable coupled chain trips a max_vars of 4...
    ExactSolver::Params p;
    p.max_vars = 4;
    IsingModel chain(5);
    for (uint32_t i = 0; i + 1 < 5; ++i)
        chain.addQuadratic(i, i + 1, -1.0);
    EXPECT_THROW(ExactSolver(p).solve(chain), FatalError);

    // ...but five uncoupled variables do not.
    IsingModel loose(5);
    for (uint32_t i = 0; i < 5; ++i)
        loose.addLinear(i, 1.0);
    auto res = ExactSolver(p).solve(loose);
    EXPECT_DOUBLE_EQ(res.min_energy, -5.0);
    ASSERT_EQ(res.ground_states.size(), 1u);
    for (auto s : res.ground_states[0])
        EXPECT_EQ(s, -1);
}

TEST(Exact, ComponentDecompositionMatchesDense)
{
    // Two coupled blocks with no cross terms: the composed result must
    // equal the dense enumeration, including the full ground-state
    // set (here 2 x 2 degenerate ferromagnetic pairs).
    IsingModel m(4);
    m.addQuadratic(0, 1, -1.0);
    m.addQuadratic(2, 3, -1.0);
    auto res = ExactSolver().solve(m);
    EXPECT_DOUBLE_EQ(res.min_energy, -2.0);
    EXPECT_EQ(res.ground_states.size(), 4u);
    for (const auto &gs : res.ground_states) {
        EXPECT_EQ(gs[0], gs[1]);
        EXPECT_EQ(gs[2], gs[3]);
        EXPECT_NEAR(m.energy(gs), -2.0, 1e-12);
    }
}

TEST(Exact, EmptyModel)
{
    IsingModel m(0);
    auto res = ExactSolver().solve(m);
    EXPECT_DOUBLE_EQ(res.min_energy, 0.0);
}

// -------------------------------------------------------------- sampleset

TEST(SampleSet, AggregatesDuplicates)
{
    SampleSet set;
    set.add({1, -1}, 0.5);
    set.add({1, -1}, 0.5);
    set.add({-1, 1}, -0.5);
    set.finalize();
    EXPECT_EQ(set.size(), 2u);
    EXPECT_EQ(set.totalReads(), 3u);
    EXPECT_DOUBLE_EQ(set.best().energy, -0.5);
    EXPECT_EQ(set.samples()[1].num_occurrences, 2u);
    EXPECT_NEAR(set.groundFraction(), 1.0 / 3.0, 1e-12);
}

TEST(SampleSet, LowestBandTolerance)
{
    SampleSet set;
    set.add({1}, 1.0);
    set.add({-1}, 1.0 + 1e-12);
    set.finalize();
    EXPECT_EQ(set.lowestBand(1e-9).size(), 2u);
    EXPECT_EQ(set.lowestBand(0.0).size(), 1u);
}

// -------------------------------------------------------------- descent

TEST(Descent, ReachesLocalMinimum)
{
    Rng rng(22);
    IsingModel m = randomModel(rng, 12);
    SpinVector spins(12);
    for (auto &s : spins)
        s = rng.spin();
    double gain = greedyDescent(m, spins);
    EXPECT_LE(gain, 0.0);
    // No single flip can improve further.
    for (uint32_t i = 0; i < 12; ++i)
        EXPECT_GE(m.flipDelta(spins, i), -1e-9);
}

TEST(Descent, PolishNeverWorsens)
{
    Rng rng(23);
    IsingModel m = randomModel(rng, 10);
    SimulatedAnnealer::Params p;
    p.num_reads = 20;
    p.sweeps = 4; // deliberately poor anneal
    auto raw = SimulatedAnnealer(p).sample(m);
    auto polished = polish(m, raw);
    EXPECT_LE(polished.best().energy, raw.best().energy + 1e-12);
}

// -------------------------------------------------------------- samplers

/** Shared check: a sampler reaches the exact ground energy. */
template <typename Sampler>
void
expectReachesGround(Sampler &&sampler, size_t n, uint64_t seed,
                    int trials = 5)
{
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
        IsingModel m = randomModel(rng, n);
        double want = ExactSolver().minEnergy(m);
        auto set = sampler(m);
        EXPECT_NEAR(set.best().energy, want, 1e-9) << "trial " << t;
    }
}

TEST(SimulatedAnnealing, ReachesGroundOnRandomModels)
{
    SimulatedAnnealer::Params p;
    p.num_reads = 24;
    p.sweeps = 128;
    p.seed = 31;
    expectReachesGround(
        [&](const IsingModel &m) {
            return SimulatedAnnealer(p).sample(m);
        },
        14, 31);
}

TEST(SimulatedAnnealing, DeterministicBySeed)
{
    Rng rng(32);
    IsingModel m = randomModel(rng, 10);
    SimulatedAnnealer::Params p;
    p.num_reads = 10;
    p.sweeps = 32;
    auto a = SimulatedAnnealer(p).sample(m);
    auto b = SimulatedAnnealer(p).sample(m);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(a.best().energy, b.best().energy);
}

TEST(SimulatedAnnealing, BetaRangeSane)
{
    Rng rng(33);
    IsingModel m = randomModel(rng, 8);
    auto [b0, b1] = SimulatedAnnealer::defaultBetaRange(m);
    EXPECT_GT(b0, 0.0);
    EXPECT_GT(b1, b0);
}

TEST(PathIntegral, ReachesGroundOnRandomModels)
{
    PathIntegralAnnealer::Params p;
    p.num_reads = 10;
    p.sweeps = 64;
    p.trotter_slices = 8;
    p.seed = 41;
    expectReachesGround(
        [&](const IsingModel &m) {
            return PathIntegralAnnealer(p).sample(m);
        },
        12, 41, 3);
}

TEST(ChainFlip, CompositeDeltaIsExact)
{
    // Build a chained model and verify composite-move acceptance uses
    // the true energy change: flipping a chain by hand must match.
    Rng rng(51);
    IsingModel m = randomModel(rng, 9, 0.7);
    std::vector<std::vector<uint32_t>> chains = {{0, 1, 2}, {3, 4},
                                                 {5}, {6, 7, 8}};
    // Strong intra-chain ferromagnetic couplings.
    for (const auto &c : chains)
        for (size_t i = 0; i + 1 < c.size(); ++i)
            m.addQuadratic(c[i], c[i + 1], -3.0);

    SpinVector spins(9);
    for (auto &s : spins)
        s = rng.spin();
    for (const auto &c : chains) {
        double before = m.energy(spins);
        // Composite delta as the annealer computes it.
        double delta = 0;
        for (uint32_t q : c)
            delta += m.flipDelta(spins, q);
        for (size_t i = 0; i < c.size(); ++i)
            for (size_t j = i + 1; j < c.size(); ++j)
                delta += 4.0 * m.quadratic(c[i], c[j]) * spins[c[i]] *
                    spins[c[j]];
        for (uint32_t q : c)
            spins[q] = static_cast<ising::Spin>(-spins[q]);
        EXPECT_NEAR(m.energy(spins), before + delta, 1e-9);
    }
}

TEST(ChainFlip, SolvesChainedModelWhereSingleFlipStalls)
{
    // A 3-logical-variable frustrated model, each variable a 5-qubit
    // chain with strong couplings: plain SA at few sweeps rarely finds
    // the ground state; chain moves do.
    IsingModel logical(3);
    logical.addLinear(0, 0.8);
    logical.addQuadratic(0, 1, 1.0);
    logical.addQuadratic(1, 2, 1.0);
    logical.addQuadratic(0, 2, 1.0);

    const int L = 5;
    IsingModel phys(3 * L);
    std::vector<std::vector<uint32_t>> chains(3);
    for (uint32_t v = 0; v < 3; ++v)
        for (int k = 0; k < L; ++k)
            chains[v].push_back(v * L + k);
    for (uint32_t v = 0; v < 3; ++v) {
        phys.addLinear(chains[v][0], logical.linear(v));
        for (int k = 0; k + 1 < L; ++k)
            phys.addQuadratic(chains[v][k], chains[v][k + 1], -2.0);
    }
    for (const auto &t : logical.quadraticTerms())
        phys.addQuadratic(chains[t.i].back(), chains[t.j].back(),
                          t.value);

    double want = ExactSolver().minEnergy(phys);
    ChainFlipAnnealer::Params p;
    p.num_reads = 20;
    p.sweeps = 64;
    p.seed = 61;
    auto set = ChainFlipAnnealer(p, chains).sample(phys);
    EXPECT_NEAR(set.best().energy, want, 1e-9);
}

TEST(Samplers, EmptyModelIsHandled)
{
    IsingModel m(0);
    EXPECT_TRUE(SimulatedAnnealer().sample(m).empty());
    EXPECT_TRUE(PathIntegralAnnealer().sample(m).empty());
}

} // namespace
} // namespace qac::anneal
