/**
 * @file
 * Gate vocabulary: the cell set the paper's ABC flow targets.
 *
 * "The particular gates chosen for inclusion ... correspond to the set of
 * gates considered by default by the ABC optimizer" (Section 4.3.2,
 * Table 5): NOT, AND, OR, NAND, NOR, XOR, XNOR, 2:1 MUX, AOI3, OAI3,
 * AOI4, OAI4, and positive/negative edge-triggered D flip-flops.  BUF is
 * included as a netlist convenience (it lowers to a QMASM chain).
 */

#ifndef QAC_CELLS_GATE_H
#define QAC_CELLS_GATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace qac::cells {

/** Cell types understood by the tech mapper and the QMASM backend. */
enum class GateType : uint8_t {
    BUF,   ///< Y = A (becomes a chain, not a macro)
    NOT,   ///< Y = !A
    AND,   ///< Y = A & B
    OR,    ///< Y = A | B
    NAND,  ///< Y = !(A & B)
    NOR,   ///< Y = !(A | B)
    XOR,   ///< Y = A ^ B
    XNOR,  ///< Y = !(A ^ B)
    MUX,   ///< Y = S ? B : A
    AOI3,  ///< Y = !((A & B) | C)
    OAI3,  ///< Y = !((A | B) & C)
    AOI4,  ///< Y = !((A & B) | (C & D))
    OAI4,  ///< Y = !((A | B) & (C | D))
    DFF_P, ///< Q = D at posedge (time-unrolled; Section 4.3.3)
    DFF_N, ///< Q = D at negedge (same treatment)
};

/** Number of distinct GateType values. */
constexpr size_t kNumGateTypes = 15;

/** Static metadata for one gate type. */
struct GateInfo
{
    GateType type;
    const char *name;                    ///< e.g. "AOI3"
    std::vector<std::string> inputs;     ///< port names in argument order
    const char *output;                  ///< "Y", or "Q" for flip-flops
    bool sequential;                     ///< true for DFFs
};

/** Metadata lookup. */
const GateInfo &gateInfo(GateType type);

/** Look a gate type up by name ("AND", "DFF_P", ...). Fatal if unknown. */
GateType gateTypeByName(const std::string &name);

/**
 * Combinational evaluation.  Bit k of @p input_bits is the k'th input in
 * gateInfo(type).inputs order.  Panics for sequential gates.
 */
bool evalGate(GateType type, uint32_t input_bits);

} // namespace qac::cells

#endif // QAC_CELLS_GATE_H
