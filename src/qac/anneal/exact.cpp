#include "qac/anneal/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qac/exec/exec.h"
#include "qac/ising/compiled.h"
#include "qac/stats/registry.h"
#include "qac/util/logging.h"

namespace qac::anneal {

namespace {

/** Spin state after Gray-code step k: bit i of k^(k>>1) set => +1. */
ising::SpinVector
grayState(uint64_t k, size_t n)
{
    uint64_t g = k ^ (k >> 1);
    ising::SpinVector spins(n, -1);
    for (size_t i = 0; i < n; ++i)
        if ((g >> i) & 1)
            spins[i] = 1;
    return spins;
}

struct ShardResult
{
    double min_energy = std::numeric_limits<double>::infinity();
    std::vector<ising::SpinVector> ground_states;
    bool truncated = false;
};

/**
 * Connected components of the coupling graph, each listed in
 * ascending variable order; the components themselves are ordered by
 * their smallest variable.  Deterministic, so the composed
 * ground-state list below is too.
 */
std::vector<std::vector<uint32_t>>
couplingComponents(const ising::IsingModel &model)
{
    const size_t n = model.numVars();
    std::vector<std::vector<uint32_t>> adj(n);
    for (const auto &t : model.quadraticTerms()) {
        adj[t.i].push_back(t.j);
        adj[t.j].push_back(t.i);
    }
    std::vector<std::vector<uint32_t>> comps;
    std::vector<bool> seen(n, false);
    std::vector<uint32_t> stack;
    for (uint32_t v = 0; v < n; ++v) {
        if (seen[v])
            continue;
        std::vector<uint32_t> comp;
        seen[v] = true;
        stack.push_back(v);
        while (!stack.empty()) {
            uint32_t u = stack.back();
            stack.pop_back();
            comp.push_back(u);
            for (uint32_t w : adj[u])
                if (!seen[w]) {
                    seen[w] = true;
                    stack.push_back(w);
                }
        }
        std::sort(comp.begin(), comp.end());
        comps.push_back(std::move(comp));
    }
    return comps;
}

/** The sub-model induced by @p vars (ascending original ids). */
ising::IsingModel
inducedModel(const ising::IsingModel &model,
             const std::vector<uint32_t> &vars)
{
    std::vector<uint32_t> to_local(model.numVars(), UINT32_MAX);
    for (uint32_t k = 0; k < vars.size(); ++k)
        to_local[vars[k]] = k;
    ising::IsingModel sub;
    sub.resize(vars.size());
    for (uint32_t k = 0; k < vars.size(); ++k) {
        double h = model.linear(vars[k]);
        if (h != 0.0)
            sub.addLinear(k, h);
    }
    for (const auto &t : model.quadraticTerms())
        if (to_local[t.i] != UINT32_MAX)
            sub.addQuadratic(to_local[t.i], to_local[t.j], t.value);
    return sub;
}

} // namespace

ExactResult
ExactSolver::solve(const ising::IsingModel &model) const
{
    const size_t n = model.numVars();

    ExactResult res;
    if (n == 0) {
        res.min_energy = 0.0;
        res.ground_states.emplace_back();
        return res;
    }

    // The 2^n wall applies per *connected component*, not per model:
    // energies are additive across components, so each is enumerated
    // independently and the ground-state sets composed.  This is what
    // lets the differential oracle enumerate a fully-pinned circuit
    // whose residual gadget clusters are small even when their union
    // is far beyond max_vars.
    std::vector<std::vector<uint32_t>> comps =
        couplingComponents(model);
    if (comps.size() > 1)
        return solveComposed(model, comps);

    if (n > params_.max_vars)
        fatal("ExactSolver: %zu variables exceeds the limit of %zu", n,
              params_.max_vars);

    // CSR walk: flipDelta is O(degree) over flat arrays, shared
    // read-only by every shard.
    const ising::CompiledModel kernel(model);

    // The Gray-code walk is split into contiguous shards whose
    // boundaries depend only on the problem size — never the thread
    // count — so the per-shard floating-point accumulation (and hence
    // the result) is bitwise identical for any --threads value.
    const uint64_t total = uint64_t{1} << n;
    uint64_t shards = total >> 16; // >= 2^16 states per shard
    shards = std::min<uint64_t>(std::max<uint64_t>(shards, 1), 64);
    const uint64_t per = total / shards; // exact: powers of two

    std::vector<ShardResult> parts(shards);
    {
        stats::ScopedTimer timer("anneal.exact.time");
        exec::parallelFor(shards, params_.threads, [&](size_t s) {
            ShardResult &r = parts[s];
            const uint64_t lo = uint64_t{s} * per;
            const uint64_t hi = lo + per;
            ising::SpinVector spins = grayState(lo, n);
            double energy = kernel.energy(spins);

            auto consider = [&](double e) {
                if (e < r.min_energy - params_.tol) {
                    r.min_energy = e;
                    r.ground_states.clear();
                    r.ground_states.push_back(spins);
                    r.truncated = false;
                } else if (std::abs(e - r.min_energy) <= params_.tol) {
                    if (r.ground_states.size() <
                        params_.max_ground_states)
                        r.ground_states.push_back(spins);
                    else
                        r.truncated = true;
                }
            };

            consider(energy);
            // Gray-code walk: step k flips the lowest set bit of k.
            for (uint64_t k = lo + 1; k < hi; ++k) {
                uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(k));
                energy += kernel.flipDelta(spins, bit);
                spins[bit] = static_cast<ising::Spin>(-spins[bit]);
                consider(energy);
            }
        });
    }

    // Merge shards in walk order; same accept rule as the sequential
    // scan, so the combined state list matches a single-shard run.
    res.min_energy = std::numeric_limits<double>::infinity();
    for (const ShardResult &part : parts) {
        bool contributes = false;
        if (part.min_energy < res.min_energy - params_.tol) {
            res.min_energy = part.min_energy;
            res.ground_states.clear();
            res.truncated = false;
            contributes = true;
        } else if (std::abs(part.min_energy - res.min_energy) <=
                   params_.tol) {
            contributes = true;
        }
        if (!contributes)
            continue;
        for (const auto &gs : part.ground_states) {
            if (res.ground_states.size() < params_.max_ground_states)
                res.ground_states.push_back(gs);
            else
                res.truncated = true;
        }
        if (part.truncated)
            res.truncated = true;
    }

    stats::count("anneal.exact.states", total);
    stats::count("anneal.exact.ground_states", res.ground_states.size());
    return res;
}

ExactResult
ExactSolver::solveComposed(
    const ising::IsingModel &model,
    const std::vector<std::vector<uint32_t>> &comps) const
{
    // Seed with one empty template assignment, then take the cross
    // product of each component's ground-state set (energies add,
    // states are independent).  Components and their states arrive in
    // deterministic order, so the composed list is deterministic too.
    ExactResult res;
    res.min_energy = 0.0;
    res.ground_states.emplace_back(model.numVars(), ising::Spin{-1});
    for (const auto &comp : comps) {
        ExactResult part = solve(inducedModel(model, comp));
        res.min_energy += part.min_energy;
        if (part.truncated)
            res.truncated = true;
        const size_t cap = params_.max_ground_states;
        std::vector<ising::SpinVector> combined;
        bool full = false;
        for (size_t a = 0; a < res.ground_states.size() && !full; ++a) {
            for (const auto &gs : part.ground_states) {
                if (combined.size() == cap) {
                    res.truncated = true;
                    full = true;
                    break;
                }
                ising::SpinVector s = res.ground_states[a];
                for (size_t k = 0; k < comp.size(); ++k)
                    s[comp[k]] = gs[k];
                combined.push_back(std::move(s));
            }
        }
        res.ground_states = std::move(combined);
    }
    stats::count("anneal.exact.composed");
    return res;
}

double
ExactSolver::minEnergy(const ising::IsingModel &model) const
{
    // solve() without storing states would save memory; ground-state
    // lists are small in practice, so reuse it.
    return solve(model).min_energy;
}

SampleSet
ExactSolver::sample(const ising::IsingModel &model) const
{
    ExactResult res = solve(model);
    SampleSet out;
    for (const auto &gs : res.ground_states)
        out.add(gs, res.min_energy);
    out.finalize();
    return out;
}

} // namespace qac::anneal
