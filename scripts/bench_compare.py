#!/usr/bin/env python3
"""Diff fresh BENCH_*.json artifacts against committed baselines.

The bench binaries emit one qac-stats-v1 JSON file each (see
bench/bench_stats.h).  Baselines under bench/baselines/ are generated
from a QAC_BENCH_SMOKE=1 run, so they pin the *structural* trajectory
of each benchmark — problem sizes, gate counts, solver read totals —
rather than wall-clock performance.  Timing-derived metrics vary run
to run and machine to machine, so anything that smells like a clock is
skipped:

  * metrics of kind "timer" (and any path ending in _ns/.ns/_ms/.ms)
  * throughput counters (paths containing per_sec)
  * scheduler-dependent counters (exec.steal*, exec.worker*) and
    wall-clock counters (paths containing wall)
  * distribution moments (only the sample `count` is compared)
  * the manifest provenance block (host, git revision, ...)

Derived speedup ratios (paths containing "speedup") get a one-sided
floor instead of the two-sided tolerance: a kernel being *faster* than
the baseline recorded is never a problem, but a fresh speedup below
--speedup-floor times the baseline value is — that is the signature of
a vector engine silently falling back to scalar, which the two-sided
volatile rules used to hide entirely.  The floor is deliberately loose
(default 0.5) because ratios move with the host's ISA and load.

Everything else must match the baseline within --tolerance (relative).

Usage:
  bench_compare.py [--baseline-dir DIR] [--tolerance FRAC]
                   [--speedup-floor FRAC] [--check]
                   FRESH.json [FRESH.json ...]

Exit status: 0 when all compared files match (or with --check, always
unless a file is unreadable); 1 on any regression without --check.
"""

import argparse
import json
import os
import sys

VOLATILE_SUBSTRINGS = ("per_sec", "exec.steal", "exec.worker", "wall")
VOLATILE_SUFFIXES = ("_ns", ".ns", "_ms", ".ms")


def is_volatile(path, kind):
    if kind == "timer":
        return True
    if any(s in path for s in VOLATILE_SUBSTRINGS):
        return True
    return path.endswith(VOLATILE_SUFFIXES)


def stable_values(report):
    """(exact, floors): path -> value maps for one qac-stats-v1 report.

    `exact` entries are compared two-sided within --tolerance; `floors`
    entries (speedup ratios) only flag when the fresh value drops below
    the baseline by more than the speedup floor.
    """
    out, floors = {}, {}
    for m in report.get("metrics", []):
        path, kind = m.get("path", ""), m.get("kind", "")
        if "speedup" in path:
            if isinstance(m.get("value"), (int, float)):
                floors[path] = m["value"]
            continue
        if is_volatile(path, kind):
            continue
        if kind == "distribution":
            # Moments drift with scheduling; the sample count is the
            # structural part of a distribution's trajectory.
            out[path + "#count"] = m.get("count", 0)
        elif isinstance(m.get("value"), (int, float)):
            out[path] = m["value"]
    return out, floors


def within(base, fresh, tol):
    if base == fresh:
        return True
    denom = max(abs(base), abs(fresh), 1e-12)
    return abs(base - fresh) / denom <= tol


def compare_file(fresh_path, baseline_dir, tol, floor):
    """Returns (n_compared, [problem strings])."""
    name = os.path.basename(fresh_path)
    base_path = os.path.join(baseline_dir, name)
    if not os.path.exists(base_path):
        return 0, ["%s: no baseline at %s (add one from a "
                   "QAC_BENCH_SMOKE=1 run)" % (name, base_path)]
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    problems = []
    base_smoke = base.get("manifest", {}).get("params", {}).get("smoke")
    fresh_smoke = \
        fresh.get("manifest", {}).get("params", {}).get("smoke")
    if base_smoke != fresh_smoke:
        problems.append(
            "%s: smoke-mode mismatch (baseline smoke=%s, fresh "
            "smoke=%s); values are not comparable" %
            (name, base_smoke, fresh_smoke))
        return 0, problems

    bvals, bfloors = stable_values(base)
    fvals, ffloors = stable_values(fresh)
    n = 0
    for path, bval in sorted(bvals.items()):
        if path not in fvals:
            problems.append("%s: %s missing from fresh run" %
                            (name, path))
            continue
        n += 1
        if not within(bval, fvals[path], tol):
            problems.append(
                "%s: %s = %s, baseline %s (tolerance %g)" %
                (name, path, fvals[path], bval, tol))
    for path, bval in sorted(bfloors.items()):
        if path not in ffloors:
            problems.append("%s: %s missing from fresh run" %
                            (name, path))
            continue
        n += 1
        if ffloors[path] < bval * floor:
            problems.append(
                "%s: %s = %s, below floor %g of baseline %s — "
                "vector engine silently regressed to scalar?" %
                (name, path, ffloors[path], floor, bval))
    return n, problems


def main(argv):
    ap = argparse.ArgumentParser(
        description="Compare BENCH_*.json against baselines")
    ap.add_argument("fresh", nargs="+", metavar="FRESH.json")
    ap.add_argument("--baseline-dir",
                    default=os.path.join(
                        os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        "bench", "baselines"))
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative tolerance (default 0.05)")
    ap.add_argument("--speedup-floor", type=float, default=0.5,
                    help="one-sided floor for speedup gauges: fresh "
                         "must be >= floor * baseline (default 0.5)")
    ap.add_argument("--check", action="store_true",
                    help="report only; always exit 0 on mismatches")
    args = ap.parse_args(argv)

    total, all_problems = 0, []
    for path in args.fresh:
        try:
            n, problems = compare_file(path, args.baseline_dir,
                                       args.tolerance,
                                       args.speedup_floor)
        except (OSError, ValueError) as e:
            print("bench_compare: cannot read %s: %s" % (path, e),
                  file=sys.stderr)
            return 2
        total += n
        all_problems += problems
        tag = "ok  " if not problems else "DIFF"
        print("%s %s (%d metrics compared, %d problems)" %
              (tag, os.path.basename(path), n, len(problems)))

    for p in all_problems:
        print("  " + p)
    if all_problems and args.check:
        print("bench_compare: %d problem(s) (informational; --check)"
              % len(all_problems))
        return 0
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
