/**
 * @file
 * Path-integral Monte-Carlo simulated quantum annealing (SQA).
 *
 * The closest software analogue of the D-Wave annealing process the
 * paper runs on (Section 2): the transverse-field Ising Hamiltonian is
 * Trotter-decomposed into M coupled replicas of the classical problem;
 * the transverse field Gamma(t) is ramped down over the anneal, its
 * strength entering as the inter-replica coupling
 *
 *     J_perp(t) = -(1 / (2 beta_slice)) ln tanh(Gamma(t) beta_slice).
 *
 * The paper itself cites this technique as a hardware-comparable
 * classical substitute (Hitachi's "simulated quantum annealer" [48]).
 */

#ifndef QAC_ANNEAL_PATHINTEGRAL_H
#define QAC_ANNEAL_PATHINTEGRAL_H

#include "qac/anneal/sampler.h"
#include "qac/anneal/sampleset.h"
#include "qac/ising/model.h"

namespace qac::anneal {

class PathIntegralAnnealer : public Sampler
{
  public:
    struct Params : CommonParams
    {
        Params() { num_reads = 25; }
        uint32_t sweeps = 128;        ///< Gamma steps per anneal
        uint32_t trotter_slices = 16; ///< replicas M
        double beta = 8.0;            ///< total inverse temperature
        /** Transverse-field ramp; 0 = auto (3x max coupling scale). */
        double gamma_initial = 0.0;
        double gamma_final = 0.01;
    };

    PathIntegralAnnealer() = default;
    explicit PathIntegralAnnealer(Params params) : params_(params) {}

    /** Anneal; each read reports its best slice (greedy-polished). */
    SampleSet sample(const ising::IsingModel &model) const override;

  private:
    Params params_{};
};

} // namespace qac::anneal

#endif // QAC_ANNEAL_PATHINTEGRAL_H
