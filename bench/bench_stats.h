/**
 * @file
 * Machine-readable bench output.
 *
 * Each benchmark main() opens a benchstats::Scope("<name>"); on exit
 * it writes BENCH_<name>.json (the qac-stats-v1 schema from
 * stats/report.h) into the working directory, capturing every metric
 * the instrumented pipeline recorded during the run.  This gives the
 * perf trajectory a stable artifact to diff from PR to PR alongside
 * the human-readable text output.
 */

#ifndef QAC_BENCH_BENCH_STATS_H
#define QAC_BENCH_BENCH_STATS_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "qac/stats/registry.h"
#include "qac/stats/report.h"
#include "qac/telemetry/manifest.h"

namespace qac::benchstats {

/**
 * True when QAC_BENCH_SMOKE is set to a non-empty, non-"0" value.
 * scripts/bench_smoke.sh exports it so every bench shrinks its
 * workload to a seconds-scale sanity pass that still exercises the
 * full code path and emits a parseable BENCH_<name>.json.
 */
inline bool
smoke()
{
    const char *v = std::getenv("QAC_BENCH_SMOKE");
    return v && *v && !(v[0] == '0' && v[1] == '\0');
}

class Scope
{
  public:
    explicit Scope(std::string name) : name_(std::move(name))
    {
        stats::Registry::global().reset();
        stats::Registry::global().setEnabled(true);
    }

    ~Scope()
    {
        std::string path = "BENCH_" + name_ + ".json";
        // Provenance block: version + git describe + host make a
        // bench JSON self-describing when diffed against a baseline
        // from another checkout (scripts/bench_compare.py).
        telemetry::Manifest manifest =
            telemetry::Manifest::make("bench_" + name_);
        if (smoke())
            manifest.param("smoke", uint64_t{1});
        if (!stats::writeJsonReport(path, manifest.block(true)))
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path.c_str());
        stats::Registry::global().setEnabled(false);
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::string name_;
};

} // namespace qac::benchstats

#endif // QAC_BENCH_BENCH_STATS_H
