/**
 * @file
 * Unit tests for the s-expression reader/printer (the EDIF substrate).
 */

#include <gtest/gtest.h>

#include "qac/sexpr/sexpr.h"
#include "qac/util/logging.h"

namespace qac::sexpr {
namespace {

TEST(SExpr, ParseAtom)
{
    Node n = parse("hello");
    EXPECT_TRUE(n.isAtom());
    EXPECT_EQ(n.text(), "hello");
}

TEST(SExpr, ParseFlatList)
{
    Node n = parse("(a b c)");
    ASSERT_TRUE(n.isList());
    ASSERT_EQ(n.size(), 3u);
    EXPECT_EQ(n[0].text(), "a");
    EXPECT_EQ(n[2].text(), "c");
    EXPECT_EQ(n.head(), "a");
}

TEST(SExpr, ParseNested)
{
    Node n = parse("(a (b (c d)) e)");
    ASSERT_EQ(n.size(), 3u);
    ASSERT_TRUE(n[1].isList());
    EXPECT_EQ(n[1][1][0].text(), "c");
}

TEST(SExpr, ParseString)
{
    Node n = parse(R"((name "hello world"))");
    ASSERT_EQ(n.size(), 2u);
    EXPECT_TRUE(n[1].isString());
    EXPECT_EQ(n[1].text(), "hello world");
}

TEST(SExpr, StringEscapes)
{
    Node n = parse(R"(("a\"b\\c"))");
    EXPECT_EQ(n[0].text(), "a\"b\\c");
}

TEST(SExpr, EmptyList)
{
    Node n = parse("()");
    EXPECT_TRUE(n.isList());
    EXPECT_EQ(n.size(), 0u);
    EXPECT_EQ(n.head(), "");
}

TEST(SExpr, ParseAllTopLevel)
{
    auto v = parseAll("(a) (b c) atom");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_TRUE(v[2].isAtom());
}

TEST(SExpr, RoundTripCompact)
{
    const std::string src = "(edif top (version 2 0 0) (cell X))";
    Node n = parse(src);
    Node n2 = parse(n.toString(false));
    EXPECT_EQ(n, n2);
}

TEST(SExpr, RoundTripPretty)
{
    Node n = parse("(a (b \"s with space\") (c (d e f g h i j k)))");
    Node n2 = parse(n.toString(true));
    EXPECT_EQ(n, n2);
}

TEST(SExpr, UnbalancedOpenFails)
{
    EXPECT_THROW(parse("(a (b)"), FatalError);
}

TEST(SExpr, UnbalancedCloseFails)
{
    EXPECT_THROW(parse(")"), FatalError);
}

TEST(SExpr, TrailingGarbageFails)
{
    EXPECT_THROW(parse("(a) junk"), FatalError);
}

TEST(SExpr, UnterminatedStringFails)
{
    EXPECT_THROW(parse("(\"abc)"), FatalError);
}

TEST(SExpr, BuilderApi)
{
    Node n = Node::list({Node::atom("cell"), Node::atom("AND")});
    n.append(Node::string("note"));
    EXPECT_EQ(n.toString(false), "(cell AND \"note\")");
}

TEST(SExpr, TextOnListPanicsViaDeathTest)
{
    Node n = Node::list();
    EXPECT_DEATH((void)n.text(), "text");
}

} // namespace
} // namespace qac::sexpr
