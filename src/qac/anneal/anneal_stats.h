/**
 * @file
 * Shared end-of-sample stats recording for the annealers.
 *
 * Each solver publishes under anneal.<solver>.*: reads, sweeps,
 * sweeps_per_sec, and the ground-state hit rate of its sample set.
 * Per-read energies go to the anneal.<solver>.energy distribution at
 * the call sites (where the energy is already computed).
 */

#ifndef QAC_ANNEAL_ANNEAL_STATS_H
#define QAC_ANNEAL_ANNEAL_STATS_H

#include <string>

#include "qac/anneal/sampleset.h"
#include "qac/stats/registry.h"

namespace qac::anneal::detail {

inline void
recordSampleStats(const char *solver, const SampleSet &out,
                  uint64_t total_sweeps, uint64_t elapsed_ns)
{
    if (!stats::Registry::global().enabled())
        return;
    const std::string base = std::string("anneal.") + solver;
    stats::count(base + ".reads", out.totalReads());
    if (total_sweeps > 0) {
        stats::count(base + ".sweeps", total_sweeps);
        if (elapsed_ns > 0)
            stats::gauge(base + ".sweeps_per_sec",
                         static_cast<uint64_t>(
                             static_cast<double>(total_sweeps) * 1e9 /
                             static_cast<double>(elapsed_ns)));
    }
    stats::record(base + ".ground_fraction", out.groundFraction());
}

/**
 * Throughput of the CSR Ising kernel (DESIGN.md §9): accepted spin
 * flips across all reads of one sample() call.  Publishes both the
 * pipeline-wide anneal.kernel.* aggregate and the per-solver view.
 */
inline void
recordKernelStats(const char *solver, uint64_t flips,
                  uint64_t elapsed_ns)
{
    if (!stats::Registry::global().enabled() || flips == 0)
        return;
    const std::string base = std::string("anneal.") + solver;
    stats::count("anneal.kernel.flips", flips);
    stats::count(base + ".flips", flips);
    if (elapsed_ns > 0) {
        const uint64_t fps = static_cast<uint64_t>(
            static_cast<double>(flips) * 1e9 /
            static_cast<double>(elapsed_ns));
        stats::gauge("anneal.kernel.flips_per_sec", fps);
        stats::gauge(base + ".flips_per_sec", fps);
    }
}

/**
 * Lane accounting for the packed multi-spin kernel (DESIGN.md §13).
 * anneal.kernel.flips stays a per-replica count (the samplers popcount
 * accept masks into it); these gauges record the packing shape:
 * lanes per pass and how many packed passes covered the reads.
 */
inline void
recordPackedStats(uint32_t lanes, uint64_t packed_passes)
{
    if (!stats::Registry::global().enabled())
        return;
    stats::gauge("anneal.kernel.lanes", lanes);
    stats::count("anneal.kernel.packed_passes", packed_passes);
}

} // namespace qac::anneal::detail

#endif // QAC_ANNEAL_ANNEAL_STATS_H
