/**
 * @file
 * Reproduces the Section 4.3.3 claim for Listing 3: statically
 * unrolling sequential code "exacts a heavy toll in qubit count".
 * Sweeps the unroll depth of the 6-bit counter and reports gate,
 * variable, and (for small depths) physical-qubit counts.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "qac/core/compiler.h"
#include "qac/util/logging.h"

#include "bench_stats.h"

namespace {

using namespace qac;

const char *kCount = R"(
module count (clk, inc, reset, out);
  input clk, inc, reset;
  output [5:0] out;
  reg [5:0] var;
  always @(posedge clk)
    if (reset) var <= 0;
    else if (inc) var <= var + 1;
  assign out = var;
endmodule
)";

void
printQubitToll()
{
    std::printf("--- Listing 3 unrolled: the qubit toll of "
                "time-to-space trading ---\n");
    std::printf("%6s %8s %10s %10s %16s\n", "steps", "gates",
                "log vars", "log terms", "C16 phys qubits");
    const std::vector<size_t> depths =
        benchstats::smoke() ? std::vector<size_t>{1, 2}
                            : std::vector<size_t>{1, 2, 3, 4, 6, 8};
    for (size_t steps : depths) {
        core::CompileOptions opts;
        opts.verilogOpts().top = "count";
        opts.verilogOpts().unroll_steps = steps;
        // Smoke skips the C16 embeddings: the qubit-count
        // column is the slow part and the compile path is
        // what the sanity pass needs to cover.
        bool embed = !benchstats::smoke() && steps <= 2;
        if (embed)
            opts.target = core::Target::Chimera;
        auto r = core::compile(kCount, opts);
        if (embed)
            std::printf("%6zu %8zu %10zu %10zu %16zu\n", steps,
                        r.stats.gates, r.stats.logical_vars,
                        r.stats.logical_terms,
                        r.stats.physical_qubits);
        else
            std::printf("%6zu %8zu %10zu %10zu %16s\n", steps,
                        r.stats.gates, r.stats.logical_vars,
                        r.stats.logical_terms, "(skipped)");
    }
    std::printf("(the paper: \"stateful programs of even modest size "
                "[are] impractical for\n current, qubit-limited "
                "quantum annealers\" — 2048 qubits on a D-Wave "
                "2000Q)\n\n");
}

void
BM_UnrollAndCompile(benchmark::State &state)
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "count";
    opts.verilogOpts().unroll_steps = static_cast<size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::compile(kCount, opts));
    state.SetLabel(qac::format("steps=%lld",
                          static_cast<long long>(state.range(0))));
}
BENCHMARK(BM_UnrollAndCompile)->Arg(1)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("sequential");
    printQubitToll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
