#include "qac/anneal/qbsolv.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "qac/anneal/anneal_stats.h"
#include "qac/anneal/descent.h"
#include "qac/anneal/exact.h"
#include "qac/anneal/parallel_reads.h"
#include "qac/ising/compiled.h"
#include "qac/stats/trace.h"
#include "qac/telemetry/telemetry.h"
#include "qac/util/logging.h"
#include "qac/util/rng.h"

namespace qac::anneal {

ising::IsingModel
clampModel(const ising::IsingModel &model,
           const std::vector<uint32_t> &keep,
           const ising::SpinVector &spins, double *offset)
{
    std::vector<uint32_t> dense(model.numVars(), UINT32_MAX);
    for (uint32_t k = 0; k < keep.size(); ++k)
        dense[keep[k]] = k;

    ising::IsingModel sub(keep.size());
    double off = 0.0;
    for (uint32_t i = 0; i < model.numVars(); ++i) {
        double h = model.linear(i);
        if (h == 0.0)
            continue;
        if (dense[i] != UINT32_MAX)
            sub.addLinear(dense[i], h);
        else
            off += h * spins[i];
    }
    for (const auto &t : model.quadraticTerms()) {
        bool in_i = dense[t.i] != UINT32_MAX;
        bool in_j = dense[t.j] != UINT32_MAX;
        if (in_i && in_j)
            sub.addQuadratic(dense[t.i], dense[t.j], t.value);
        else if (in_i)
            sub.addLinear(dense[t.i], t.value * spins[t.j]);
        else if (in_j)
            sub.addLinear(dense[t.j], t.value * spins[t.i]);
        else
            off += t.value * spins[t.i] * spins[t.j];
    }
    if (offset)
        *offset = off;
    return sub;
}

SampleSet
QbsolvSolver::sample(const ising::IsingModel &model) const
{
    const size_t n = model.numVars();
    SampleSet out;
    if (n == 0) {
        out.finalize();
        return out;
    }

    stats::ScopedTimer timer("anneal.qbsolv.time");
    const uint64_t t0 = stats::Trace::nowNs();

    SubSolver sub = sub_;
    if (!sub) {
        sub = [](const ising::IsingModel &m) {
            return ExactSolver().solve(m).ground_states.front();
        };
    }

    const size_t sub_n = std::max<size_t>(2, params_.subproblem_size);
    const ising::CompiledModel kernel(model);
    std::atomic<uint64_t> flips{0};
    telemetry::RunTrace *trun =
        telemetry::Collector::global().beginRun("qbsolv",
                                                params_.restarts);

    out = detail::sampleReads(
        params_.restarts, params_.threads,
        [&](uint32_t restart, SampleSet &part) {
        Rng rng = Rng::streamAt(params_.seed, restart);
        ising::SpinVector spins(n);
        for (auto &s : spins)
            s = rng.spin();
        ising::LocalFieldState state(kernel);
        state.reset(spins);
        greedyDescent(state);
        telemetry::ReadRecorder *rec =
            trun ? trun->recorder(restart) : nullptr;

        uint32_t iters_done = 0;
        for (uint32_t iter = 0; iter < params_.outer_iterations;
             ++iter) {
            iters_done = iter + 1;
            if (n <= sub_n) {
                // The whole problem fits: one shot.
                stats::count("anneal.qbsolv.subproblems");
                state.reset(sub(model));
                if (rec && rec->want(iter))
                    rec->record(iter, state.energy(),
                                static_cast<double>(iter),
                                state.flips(),
                                uint64_t{iter + 1} * sub_n);
                break;
            }
            // Rank variables by |flip delta|: the most "strained"
            // variables lead the subproblem (qbsolv's impact rule),
            // topped up with random fill for diversification.  The
            // incremental fields make this O(n), not O(n * degree).
            std::vector<std::pair<double, uint32_t>> impact(n);
            for (uint32_t i = 0; i < n; ++i)
                impact[i] = {-std::abs(state.flipDelta(i)), i};
            std::sort(impact.begin(), impact.end());
            std::vector<uint32_t> keep;
            size_t lead = sub_n / 2;
            for (size_t k = 0; k < lead; ++k)
                keep.push_back(impact[k].second);
            while (keep.size() < sub_n) {
                uint32_t v = static_cast<uint32_t>(rng.below(n));
                if (std::find(keep.begin(), keep.end(), v) == keep.end())
                    keep.push_back(v);
            }

            ising::IsingModel clamped =
                clampModel(model, keep, state.spins());
            stats::count("anneal.qbsolv.subproblems");
            ising::SpinVector sub_spins = sub(clamped);
            if (sub_spins.size() != keep.size())
                panic("qbsolv sub-solver returned %zu spins for %zu "
                      "variables",
                      sub_spins.size(), keep.size());

            // Candidate move: flip the sub-solved variables on a copy
            // of the incremental state and polish — the accept test
            // compares tracked energies, with no full H(sigma)
            // recompute per candidate.
            ising::LocalFieldState candidate = state;
            for (size_t k = 0; k < keep.size(); ++k)
                if (candidate.spin(keep[k]) != sub_spins[k])
                    candidate.flip(keep[k]);
            greedyDescent(candidate);
            if (candidate.energy() <= state.energy())
                state = std::move(candidate);
            // One outer iteration = one subproblem of sub_n proposed
            // variables; the schedule point is the iteration index.
            if (rec && rec->want(iter))
                rec->record(iter, state.energy(),
                            static_cast<double>(iter), state.flips(),
                            uint64_t{iter + 1} * sub_n);
        }
        // One exact end-of-read evaluation.
        double e = kernel.energy(state.spins());
        stats::record("anneal.qbsolv.energy", e);
        flips.fetch_add(state.flips(), std::memory_order_relaxed);
        if (rec)
            rec->finish(e, iters_done, state.flips(),
                        uint64_t{iters_done} * sub_n);
        part.add(state.spins(), e);
    });
    const uint64_t elapsed = stats::Trace::nowNs() - t0;
    detail::recordSampleStats("qbsolv", out, 0, elapsed);
    detail::recordKernelStats("qbsolv",
                              flips.load(std::memory_order_relaxed),
                              elapsed);
    return out;
}

} // namespace qac::anneal
