#include "qac/anneal/descent.h"

#include "qac/anneal/anneal_stats.h"
#include "qac/anneal/parallel_reads.h"
#include "qac/stats/trace.h"
#include "qac/util/rng.h"

namespace qac::anneal {

double
greedyDescent(const ising::IsingModel &model, ising::SpinVector &spins)
{
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    double gained = 0.0;
    bool improved = true;
    while (improved) {
        improved = false;
        for (uint32_t i = 0; i < n; ++i) {
            double local = model.linear(i);
            for (const auto &[j, w] : adj[i])
                local += w * spins[j];
            double delta = -2.0 * spins[i] * local;
            if (delta < -1e-12) {
                spins[i] = static_cast<ising::Spin>(-spins[i]);
                gained += delta;
                improved = true;
            }
        }
    }
    return gained;
}

SampleSet
polish(const ising::IsingModel &model, const SampleSet &in)
{
    SampleSet out;
    for (const auto &s : in.samples()) {
        ising::SpinVector spins = s.spins;
        greedyDescent(model, spins);
        double e = model.energy(spins);
        for (uint32_t k = 0; k < s.num_occurrences; ++k)
            out.add(spins, e);
    }
    out.finalize();
    return out;
}

SampleSet
DescentSampler::sample(const ising::IsingModel &model) const
{
    const size_t n = model.numVars();
    SampleSet out;
    if (n == 0) {
        out.finalize();
        return out;
    }

    stats::ScopedTimer timer("anneal.descent.time");
    const uint64_t t0 = stats::Trace::nowNs();
    model.adjacency(); // pre-build: reads run parallel

    out = detail::sampleReads(
        params_.num_reads, params_.threads,
        [&](uint32_t read, SampleSet &part) {
            Rng rng = Rng::streamAt(params_.seed, read);
            ising::SpinVector spins(n);
            for (auto &s : spins)
                s = rng.spin();
            greedyDescent(model, spins);
            double e = model.energy(spins);
            stats::record("anneal.descent.energy", e);
            part.add(spins, e);
        });
    detail::recordSampleStats("descent", out, params_.num_reads,
                              stats::Trace::nowNs() - t0);
    return out;
}

} // namespace qac::anneal
