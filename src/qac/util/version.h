/**
 * @file
 * Build identity for run provenance (telemetry manifests).
 *
 * The version string is the project's own release number; the git
 * describe string is captured at CMake configure time (see
 * src/CMakeLists.txt) and compiled into qac_util, falling back to
 * "unknown" when the tree is built outside a git checkout.
 */

#ifndef QAC_UTIL_VERSION_H
#define QAC_UTIL_VERSION_H

namespace qac::util {

/** Project release, e.g. "0.5.0". */
const char *versionString();

/** `git describe --always --dirty` at configure time, or "unknown". */
const char *gitDescribe();

} // namespace qac::util

#endif // QAC_UTIL_VERSION_H
