/**
 * @file
 * Deterministic parallel execution layer.
 *
 * Every embarrassingly parallel loop in QAC — independent anneal reads,
 * qbsolv restarts, exact-solver enumeration shards, embedder tries —
 * runs through this scheduler.  The contract is *bitwise determinism*:
 * results must be identical regardless of thread count.  The layer
 * supplies the mechanics that make that tractable:
 *
 *  - parallelFor(count, threads, fn): dynamic (work-stealing-style)
 *    index distribution over a fixed global pool.  Callers write
 *    results into per-index slots and reduce in index order, so the
 *    schedule cannot leak into the output.
 *  - CancelToken / firstSuccess: speculative tries with first-success
 *    cancellation.  The winner is always the *lowest* successful index
 *    — the same answer a sequential first-success loop produces — so
 *    cancellation saves work without costing determinism.
 *  - TaskGroup: futures-style fork/join for irregular task sets.
 *
 * Threads knobs across QAC share one convention: 0 = hardware
 * concurrency, N = exactly N logical workers.  Thread-count changes
 * only scheduling; per-task RNG streams are derived counter-style from
 * the user seed (Rng::streamAt), never from shared generator state.
 *
 * Observability: when the qac::stats registry is enabled the layer
 * records exec.tasks (indices executed), exec.steal (indices executed
 * by pool workers rather than the submitting thread), exec.cancelled
 * (speculative tasks skipped after a success), and per-drive busy time
 * under exec.worker_time.
 */

#ifndef QAC_EXEC_EXEC_H
#define QAC_EXEC_EXEC_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qac::exec {

/** Number of hardware threads (always >= 1). */
size_t hardwareConcurrency();

/** Resolve a threads knob: 0 = hardware concurrency, N = N. */
size_t resolveThreads(uint32_t threads);

/**
 * Fixed pool of detached workers feeding a shared queue.  parallelFor
 * and TaskGroup borrow workers from here; the submitting thread always
 * participates too, so a pool is never required for forward progress.
 */
class ThreadPool
{
  public:
    /**
     * The process-wide pool.  Sized so that explicit --threads requests
     * up to 8 gain real concurrency even on small machines (important
     * for the determinism and TSan test suites, which exercise
     * threads=8 schedules regardless of the host's core count).
     */
    static ThreadPool &global();

    explicit ThreadPool(size_t num_threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t size() const { return workers_.size(); }

    /** Enqueue @p fn for execution on some worker. */
    void submit(std::function<void()> fn);

    /** True when called from inside a pool worker (nesting guard). */
    static bool onWorkerThread();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Run fn(i) for every i in [0, count) on up to @p threads workers
 * (0 = hardware concurrency).  Indices are handed out dynamically, so
 * callers MUST write results into per-index slots (or reduce through
 * an order-insensitive merge) to keep outputs deterministic.
 *
 * Exceptions: every index still runs; afterwards the exception thrown
 * by the lowest faulting index is rethrown (sequential semantics).
 * Nested calls from inside a pool worker degrade to an inline loop.
 */
void parallelFor(size_t count, uint32_t threads,
                 const std::function<void(size_t)> &fn);

/**
 * Cooperative first-success cancellation: speculative tasks poll
 * cancelled(index) and abandon work that can no longer win.  The
 * winner is the lowest index that declared success, matching a
 * sequential first-success scan.
 */
class CancelToken
{
  public:
    static constexpr size_t kNone = SIZE_MAX;

    /** True when a task with a lower index already succeeded. */
    bool
    cancelled(size_t index) const
    {
        return winner_.load(std::memory_order_acquire) < index;
    }

    /** Record a success at @p index (keeps the minimum). */
    void
    declareSuccess(size_t index)
    {
        size_t cur = winner_.load(std::memory_order_acquire);
        while (index < cur &&
               !winner_.compare_exchange_weak(cur, index,
                                              std::memory_order_acq_rel))
        {}
    }

    /** Lowest successful index so far, or kNone. */
    size_t winner() const { return winner_.load(std::memory_order_acquire); }

  private:
    std::atomic<size_t> winner_{kNone};
};

/**
 * Run up to @p count speculative tries; fn returns true on success and
 * should poll the token to abandon doomed work early.  Returns the
 * lowest successful index (CancelToken::kNone when every try failed) —
 * deterministic regardless of thread count.
 */
size_t firstSuccess(size_t count, uint32_t threads,
                    const std::function<bool(size_t, const CancelToken &)>
                        &fn);

/**
 * Futures-style fork/join over the global pool.  spawn() may run the
 * task asynchronously (or inline when called from a pool worker);
 * wait() joins everything and rethrows the exception of the
 * earliest-spawned failing task.
 */
class TaskGroup
{
  public:
    TaskGroup() = default;
    ~TaskGroup();
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void spawn(std::function<void()> fn);
    void wait();

  private:
    struct State
    {
        std::mutex mu;
        std::condition_variable cv;
        size_t active = 0;
        size_t err_order = SIZE_MAX;
        std::exception_ptr err;
    };
    State state_;
    size_t spawned_ = 0;
};

} // namespace qac::exec

#endif // QAC_EXEC_EXEC_H
