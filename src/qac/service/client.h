/**
 * @file
 * Client side of the qmad protocol: connect to a daemon's unix
 * socket, read its Hello capabilities frame, then issue requests.
 *
 * call() is the synchronous one-shot most callers want; send() /
 * receive() expose the pipelined form (N sends, then N receives —
 * replies arrive in completion order and carry the request id, so a
 * pipelining caller matches them up itself).  `qma client` and the
 * bench_service load generator both sit on this class, which is what
 * keeps the remote path byte-identical to `qma run`: the client only
 * moves a SampleRequest/SampleResult pair that local execution uses
 * unchanged.
 */

#ifndef QAC_SERVICE_CLIENT_H
#define QAC_SERVICE_CLIENT_H

#include <string>

#include "qac/service/request.h"
#include "qac/service/wire.h"

namespace qac::service {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to the daemon at @p socket_path and read its Hello.
     * False (with @p error) on connect failure or a protocol
     * mismatch.
     */
    bool connect(const std::string &socket_path,
                 std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Capabilities advertised at connect time. */
    const Hello &hello() const { return hello_; }

    /** Synchronous round trip: send one request, wait for its reply. */
    ErrorCode call(const SampleRequest &req, SampleResult *out,
                   std::string *error = nullptr);

    /** Pipelined send; pair with one receive() per send. */
    bool send(const SampleRequest &req, std::string *error = nullptr);

    /**
     * Block for the next Result or Error frame.  Ok fills @p out;
     * a server-side Error frame returns its code with the message in
     * @p error; Disconnected means the peer hung up.
     */
    ErrorCode receive(SampleResult *out, std::string *error = nullptr);

    /** Liveness round trip (only meaningful with no replies due). */
    bool ping(std::string *error = nullptr);

    void close();

  private:
    int fd_ = -1;
    Hello hello_;
};

} // namespace qac::service

#endif // QAC_SERVICE_CLIENT_H
