#include "qac/edif/writer.h"

#include <cctype>
#include <map>
#include <set>

#include "qac/stats/registry.h"
#include "qac/util/logging.h"

namespace qac::edif {

namespace {

using netlist::NetId;
using sexpr::Node;

Node
atom(const std::string &s)
{
    return Node::atom(s);
}

/** (rename ident "original") when the name needs sanitizing. */
Node
named(const std::string &name)
{
    std::string clean = sanitizeIdent(name);
    if (clean == name)
        return atom(name);
    return Node::list({atom("rename"), atom(clean), Node::string(name)});
}

Node
portDecl(const std::string &name, bool is_input)
{
    return Node::list({atom("port"), named(name),
                       Node::list({atom("direction"),
                                   atom(is_input ? "INPUT" : "OUTPUT")})});
}

/** DEVICE-library cell declaration for a gate type. */
Node
deviceCell(const std::string &cell_name,
           const std::vector<std::string> &inputs,
           const std::string &output)
{
    Node iface = Node::list({atom("interface")});
    for (const auto &in : inputs)
        iface.append(portDecl(in, true));
    iface.append(portDecl(output, false));
    return Node::list(
        {atom("cell"), atom(cell_name),
         Node::list({atom("cellType"), atom("GENERIC")}),
         Node::list({atom("view"), atom("netlist"),
                     Node::list({atom("viewType"), atom("NETLIST")}),
                     iface})});
}

Node
portRef(const std::string &port, const std::string &instance)
{
    if (instance.empty())
        return Node::list({atom("portRef"), named(port)});
    return Node::list({atom("portRef"), named(port),
                       Node::list({atom("instanceRef"), atom(instance)})});
}

} // namespace

std::string
sanitizeIdent(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
            out += c;
        else
            out += '_';
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
        out = "id_" + out;
    return out;
}

sexpr::Node
toSExpr(const netlist::Netlist &nl)
{
    using cells::GateType;

    // Which device cells does this design use?
    std::set<std::string> used_cells;
    for (const auto &g : nl.gates())
        used_cells.insert(cells::gateInfo(g.type).name);
    auto fan = nl.fanoutCounts();
    bool use_gnd = fan[netlist::kConst0] > 0;
    bool use_vcc = fan[netlist::kConst1] > 0;

    Node device = Node::list({atom("library"), atom("DEVICE"),
                              Node::list({atom("edifLevel"), atom("0")}),
                              Node::list({atom("technology"),
                                          Node::list({atom(
                                              "numberDefinition")})})});
    for (const auto &name : used_cells) {
        GateType t = cells::gateTypeByName(name);
        const auto &info = cells::gateInfo(t);
        device.append(deviceCell(name, info.inputs, info.output));
    }
    if (use_gnd)
        device.append(deviceCell("GND", {}, "Y"));
    if (use_vcc)
        device.append(deviceCell("VCC", {}, "Y"));

    // Interface of the top cell.
    Node iface = Node::list({atom("interface")});
    for (const auto &p : nl.ports()) {
        for (size_t i = 0; i < p.bits.size(); ++i) {
            std::string bit_name =
                p.bits.size() == 1 ? p.name
                                   : format("%s[%zu]", p.name.c_str(), i);
            iface.append(
                portDecl(bit_name, p.dir == netlist::PortDir::Input));
        }
    }

    // Instances.
    Node contents = Node::list({atom("contents")});
    std::vector<std::string> inst_names(nl.numGates());
    for (size_t gi = 0; gi < nl.numGates(); ++gi) {
        const auto &g = nl.gates()[gi];
        inst_names[gi] = format("id%05zu", gi);
        contents.append(Node::list(
            {atom("instance"), atom(inst_names[gi]),
             Node::list({atom("viewRef"), atom("netlist"),
                         Node::list({atom("cellRef"),
                                     atom(cells::gateInfo(g.type).name),
                                     Node::list({atom("libraryRef"),
                                                 atom("DEVICE")})})})}));
    }
    if (use_gnd)
        contents.append(Node::list(
            {atom("instance"), atom("const0"),
             Node::list({atom("viewRef"), atom("netlist"),
                         Node::list({atom("cellRef"), atom("GND"),
                                     Node::list({atom("libraryRef"),
                                                 atom("DEVICE")})})})}));
    if (use_vcc)
        contents.append(Node::list(
            {atom("instance"), atom("const1"),
             Node::list({atom("viewRef"), atom("netlist"),
                         Node::list({atom("cellRef"), atom("VCC"),
                                     Node::list({atom("libraryRef"),
                                                 atom("DEVICE")})})})}));

    // Connectivity: one (net ...) per used net, joining every endpoint.
    std::map<NetId, std::vector<Node>> joins;
    for (size_t gi = 0; gi < nl.numGates(); ++gi) {
        const auto &g = nl.gates()[gi];
        const auto &info = cells::gateInfo(g.type);
        for (size_t k = 0; k < g.inputs.size(); ++k)
            joins[g.inputs[k]].push_back(
                portRef(info.inputs[k], inst_names[gi]));
        joins[g.output].push_back(portRef(info.output, inst_names[gi]));
    }
    if (use_gnd)
        joins[netlist::kConst0].push_back(portRef("Y", "const0"));
    if (use_vcc)
        joins[netlist::kConst1].push_back(portRef("Y", "const1"));
    for (const auto &p : nl.ports()) {
        for (size_t i = 0; i < p.bits.size(); ++i) {
            std::string bit_name =
                p.bits.size() == 1 ? p.name
                                   : format("%s[%zu]", p.name.c_str(), i);
            joins[p.bits[i]].push_back(portRef(bit_name, ""));
        }
    }

    for (auto &[net, refs] : joins) {
        if (refs.size() < 2 && !(net == netlist::kConst0 ||
                                 net == netlist::kConst1))
            continue; // dangling net: nothing to join
        Node joined = Node::list({atom("joined")});
        for (auto &r : refs)
            joined.append(std::move(r));
        contents.append(Node::list(
            {atom("net"), named(nl.netName(net)), joined}));
    }

    Node design_lib = Node::list(
        {atom("library"), atom("DESIGN"),
         Node::list({atom("edifLevel"), atom("0")}),
         Node::list(
             {atom("technology"), Node::list({atom("numberDefinition")})}),
         Node::list(
             {atom("cell"), named(nl.name()),
              Node::list({atom("cellType"), atom("GENERIC")}),
              Node::list({atom("view"), atom("netlist"),
                          Node::list({atom("viewType"), atom("NETLIST")}),
                          iface, contents})})});

    return Node::list(
        {atom("edif"), named(nl.name()),
         Node::list({atom("edifVersion"), atom("2"), atom("0"),
                     atom("0")}),
         Node::list({atom("edifLevel"), atom("0")}),
         Node::list({atom("keywordMap"),
                     Node::list({atom("keywordLevel"), atom("0")})}),
         Node::list({atom("comment"),
                     Node::string("generated by QAC edif writer")}),
         device, design_lib,
         Node::list(
             {atom("design"), named(nl.name()),
              Node::list({atom("cellRef"), named(nl.name()),
                          Node::list({atom("libraryRef"),
                                      atom("DESIGN")})})})});
}

std::string
writeEdif(const netlist::Netlist &nl)
{
    stats::ScopedTimer timer("edif.write.time");
    return toSExpr(nl).toString(/*pretty=*/true) + "\n";
}

} // namespace qac::edif
