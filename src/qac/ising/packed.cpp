#include "qac/ising/packed.h"

#include <limits>

#include "qac/util/logging.h"

namespace qac::ising {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

PackedState::PackedState(const CompiledModel &model)
    : model_(&model), delta_(model.numVars() * kLanes, kInf),
      min_delta_(model.numVars(), -kInf), bits_(model.numVars(), 0),
      flips_(kLanes, 0)
{
}

void
PackedState::resetLane(uint32_t lane, const SpinVector &spins)
{
    if (lane >= kLanes)
        panic("PackedState::resetLane: lane %u out of range", lane);
    if (spins.size() != model_->numVars())
        panic("PackedState::resetLane: %zu spins for %zu variables",
              spins.size(), model_->numVars());
    const uint64_t bit = uint64_t{1} << lane;
    for (uint32_t i = 0; i < spins.size(); ++i) {
        if (spins[i] < 0)
            bits_[i] |= bit;
        else
            bits_[i] &= ~bit;
        // Exactly LocalFieldState::reset's expression per lane.
        delta_[size_t{i} * kLanes + lane] =
            -2.0 * spins[i] * model_->localField(spins, i);
        min_delta_[i] = -kInf;
    }
    flips_[lane] = 0;
    active_ |= bit;
}

uint64_t
PackedState::candidateMask(uint32_t i, double thresh)
{
    const double *di = delta_.data() + size_t{i} * kLanes;
    uint64_t mask = 0;
    double mn = kInf;
    for (uint32_t l = 0; l < kLanes; ++l) {
        const double d = di[l];
        mask |= uint64_t{d < thresh} << l;
        mn = d < mn ? d : mn;
    }
    // The min is exact until some lane's delta at i changes, and every
    // mutation path (applyFlips at i or at a neighbor) re-dirties it.
    min_delta_[i] = mn;
    return mask;
}

void
PackedState::applyFlips(uint32_t i, uint64_t accept)
{
    double *di = delta_.data() + size_t{i} * kLanes;
    for (uint64_t m = accept; m != 0; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(__builtin_ctzll(m));
        di[l] = -di[l];
        ++flips_[l];
    }
    const uint64_t bits_new = (bits_[i] ^= accept);

    const uint32_t *nbr = model_->neighbors().data();
    const double *w = model_->weights().data();
    const uint32_t *row = model_->rowOffsets().data();
    const uint32_t end = row[i + 1];
    for (uint32_t k = row[i]; k < end; ++k) {
        const uint32_t j = nbr[k];
        // Per lane the scalar flip adds c*w*s_j with c = -4 s_new, i.e.
        // -4w when the new spin equals the neighbor's and +4w when it
        // differs; both scalings are exact, so the sums below are
        // bitwise LocalFieldState::flip per lane (signed zeros
        // included: the sign of the product is the XOR of the signs
        // either way).
        const double w4 = -4.0 * w[k];
        const uint64_t same = ~(bits_new ^ bits_[j]);
        double *dj = delta_.data() + size_t{j} * kLanes;
        for (uint64_t m = accept; m != 0; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(__builtin_ctzll(m));
            dj[l] += ((same >> l) & 1) ? w4 : -w4;
        }
        min_delta_[j] = -kInf;
    }
    min_delta_[i] = -kInf;
}

SpinVector
PackedState::laneSpins(uint32_t lane) const
{
    SpinVector spins(model_->numVars());
    for (uint32_t i = 0; i < spins.size(); ++i)
        spins[i] = spin(i, lane);
    return spins;
}

std::vector<double>
PackedState::laneDeltas(uint32_t lane) const
{
    std::vector<double> out(model_->numVars());
    for (uint32_t i = 0; i < out.size(); ++i)
        out[i] = delta_[size_t{i} * kLanes + lane];
    return out;
}

double
PackedState::laneEnergy(uint32_t lane) const
{
    // Mirrors LocalFieldState::recomputeEnergy term for term.
    double e = 0.0;
    for (uint32_t i = 0; i < bits_.size(); ++i) {
        const double s = (bits_[i] >> lane) & 1 ? -1.0 : 1.0;
        e += 0.5 * s * model_->linear(i) -
             0.25 * delta_[size_t{i} * kLanes + lane];
    }
    return e;
}

} // namespace qac::ising
