/**
 * @file
 * Randomized heuristic minor embedder in the style of Cai, Macready,
 * and Roy (arXiv:1406.2741), the algorithm behind D-Wave's SAPI
 * embedder the paper uses ("we use a randomized, heuristic minor
 * embedder", Section 6.1 — hence "the number of physical qubits varies
 * from compilation to compilation").
 *
 * Each logical vertex keeps a *vertex model* (chain).  Vertices are
 * (re)placed one at a time: a Dijkstra pass from each embedded
 * neighbor's chain, over qubits weighted exponentially in their current
 * overuse, selects a root qubit minimizing the total connection cost;
 * the union of the shortest paths becomes the new chain.  Rounds repeat
 * until no qubit is shared by two chains.
 */

#ifndef QAC_EMBED_MINORMINER_H
#define QAC_EMBED_MINORMINER_H

#include <optional>

#include "qac/embed/embedding.h"

namespace qac::embed {

struct EmbedParams
{
    uint64_t seed = 1;
    uint32_t tries = 8;       ///< independent restarts
    uint32_t rounds = 48;     ///< improvement rounds per try
    /** Qubit weight = base^overuse; 0 = auto (|V|, so one overlap
     *  always outweighs any overlap-free detour). */
    double overuse_base = 0.0;
    /** Keep improving chain sizes after the first feasible round. */
    bool minimize_qubits = true;
    /** Workers for concurrent tries; 0 = hardware concurrency.  The
     *  lowest-indexed successful try always wins, so the embedding is
     *  identical for any thread count. */
    uint32_t threads = 0;
};

/**
 * Embed a logical graph into @p hw.
 * @param logical_edges  logical couplings (u, v), u != v
 * @param num_logical    number of logical variables (isolated ones get
 *                       singleton chains)
 * @return an embedding verified by verifyEmbedding, or nullopt.
 */
std::optional<Embedding>
findEmbedding(const std::vector<std::pair<uint32_t, uint32_t>>
                  &logical_edges,
              size_t num_logical, const chimera::HardwareGraph &hw,
              const EmbedParams &params = {});

} // namespace qac::embed

#endif // QAC_EMBED_MINORMINER_H
