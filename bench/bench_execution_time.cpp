/**
 * @file
 * Reproduces Section 6.2 (execution time): microseconds per returned
 * solution for the annealer vs the classical constraint solver on the
 * Listing 7 / Listing 8 map-coloring problem.
 *
 *   paper: D-Wave 2000Q 734 us/solution (1M anneals of 20 us, incl.
 *   HTTPS and queuing) vs Chuffed 1798 us/solution.
 *
 * Our substrate is a software annealer, so absolute numbers differ;
 * the paper's point — "the performance of our approach is not
 * necessarily worse than that of a classical solver" — is what the
 * same-order-of-magnitude comparison here tests.  Like the paper's
 * Chuffed run, the CSP baseline returns a guaranteed-correct solution
 * every time while the annealer samples (and some samples are
 * invalid), so us-per-VALID-solution is also reported.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "qac/core/compiler.h"
#include "qac/core/program.h"
#include "qac/csp/csp.h"

#include "bench_stats.h"

namespace {

using namespace qac;

const char *kAustralia = R"(
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
  input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
  output valid;
  assign valid = WA != NT && WA != SA && NT != SA && NT != QLD &&
                 SA != QLD && SA != NSW && SA != VIC && QLD != NSW &&
                 NSW != VIC && NSW != ACT;
endmodule
)";

/** Listing 8's model. */
csp::Model
australiaCsp()
{
    csp::Model m;
    uint32_t nsw = m.addVariable("NSW", 1, 4);
    uint32_t qld = m.addVariable("QLD", 1, 4);
    uint32_t sa = m.addVariable("SA", 1, 4);
    uint32_t vic = m.addVariable("VIC", 1, 4);
    uint32_t wa = m.addVariable("WA", 1, 4);
    uint32_t nt = m.addVariable("NT", 1, 4);
    uint32_t act = m.addVariable("ACT", 1, 4);
    m.notEqual(wa, nt);
    m.notEqual(wa, sa);
    m.notEqual(nt, sa);
    m.notEqual(nt, qld);
    m.notEqual(sa, qld);
    m.notEqual(sa, nsw);
    m.notEqual(sa, vic);
    m.notEqual(qld, nsw);
    m.notEqual(nsw, vic);
    m.notEqual(nsw, act);
    return m;
}

void
printExecutionTimeTable()
{
    using clock = std::chrono::steady_clock;
    std::printf("--- Section 6.2: execution time, map coloring ---\n");

    // Annealer side: compile once, run many anneals, count solutions.
    core::CompileOptions opts;
    opts.verilogOpts().top = "australia";
    core::Executable prog(core::compile(kAustralia, opts));
    prog.pinDirective("valid := true");
    core::Executable::RunOptions ro;
    ro.common.num_reads = benchstats::smoke() ? 200 : 2000;
    ro.sweeps = 256;
    ro.reduce = true;

    auto t0 = clock::now();
    auto rr = prog.run(ro);
    auto t1 = clock::now();
    double total_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    uint64_t valid_reads = 0;
    for (auto *c : rr.validCandidates())
        valid_reads += c->occurrences;
    double us_per_read = total_us / rr.total_reads;
    double us_per_valid =
        valid_reads ? total_us / valid_reads : 0.0;

    // CSP side: Listing 8 solved repeatedly with randomized value
    // orders (the paper re-ran Chuffed 100,000 times; scale down but
    // measure the same per-solution quantity).
    csp::Model model = australiaCsp();
    const int csp_runs = benchstats::smoke() ? 500 : 20000;
    auto t2 = clock::now();
    size_t found = 0;
    for (int k = 0; k < csp_runs; ++k) {
        csp::Solver::Params p;
        p.seed = static_cast<uint64_t>(k + 1);
        csp::Solver solver(p);
        if (solver.solve(model))
            ++found;
    }
    auto t3 = clock::now();
    double csp_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() /
        found;

    std::printf("%-34s %12s %14s\n", "solver", "us/solution",
                "paper");
    std::printf("%-34s %12.1f %14s\n",
                "QAC annealer (per anneal read)", us_per_read, "734");
    std::printf("%-34s %12.1f %14s\n",
                "QAC annealer (per valid read)", us_per_valid, "-");
    std::printf("%-34s %12.1f %14s\n", "CSP baseline (Listing 8)",
                csp_us, "1798");
    std::printf("annealer valid fraction: %.2f over %llu reads; "
                "distinct colorings sampled: %zu\n",
                rr.validFraction(),
                static_cast<unsigned long long>(rr.total_reads),
                rr.validCandidates().size());
    std::printf("(paper's caveat holds here too: the CSP result is "
                "always correct and identical,\n the annealer samples "
                "the solution space stochastically)\n\n");
}

void
printThreadScalingTable()
{
    using clock = std::chrono::steady_clock;
    std::printf("--- thread scaling: same seeds, same answers ---\n");
    std::printf("(results are bitwise-deterministic: every row below "
                "must sample identical\n candidate sets; speedup "
                "requires as many hardware cores as workers)\n");
    std::printf("%8s %12s %9s %10s\n", "threads", "wall ms", "speedup",
                "identical");

    core::CompileOptions opts;
    opts.verilogOpts().top = "australia";
    core::Executable prog(core::compile(kAustralia, opts));
    prog.pinDirective("valid := true");
    core::Executable::RunOptions ro;
    ro.common.num_reads = benchstats::smoke() ? 200 : 2000;
    ro.sweeps = 256;
    ro.common.seed = 7;

    double base_ms = 0.0;
    std::vector<core::Executable::Candidate> reference;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        ro.common.threads = threads;
        auto t0 = clock::now();
        auto rr = prog.run(ro);
        auto t1 = clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (threads == 1) {
            base_ms = ms;
            reference = rr.candidates;
        }
        bool identical = rr.candidates.size() == reference.size();
        for (size_t i = 0; identical && i < reference.size(); ++i)
            identical =
                rr.candidates[i].logical_spins ==
                    reference[i].logical_spins &&
                rr.candidates[i].energy == reference[i].energy &&
                rr.candidates[i].occurrences ==
                    reference[i].occurrences;
        std::printf("%8u %12.1f %8.2fx %10s\n", threads, ms,
                    base_ms / ms, identical ? "yes" : "NO");
        stats::gauge("bench.threads." + std::to_string(threads) +
                         ".wall_ms",
                     static_cast<uint64_t>(ms));
    }
    std::printf("\n");
}

void
BM_AnnealerPerRead(benchmark::State &state)
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "australia";
    core::Executable prog(core::compile(kAustralia, opts));
    prog.pinDirective("valid := true");
    core::Executable::RunOptions ro;
    ro.common.num_reads = 200;
    ro.sweeps = static_cast<uint32_t>(state.range(0));
    ro.common.threads = static_cast<uint32_t>(state.range(1));
    for (auto _ : state) {
        ro.common.seed += 1;
        auto rr = prog.run(ro);
        benchmark::DoNotOptimize(rr);
    }
    state.SetItemsProcessed(state.iterations() * ro.common.num_reads);
}
BENCHMARK(BM_AnnealerPerRead)
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_CspSolve(benchmark::State &state)
{
    csp::Model model = australiaCsp();
    uint64_t seed = 1;
    for (auto _ : state) {
        csp::Solver::Params p;
        p.seed = seed++;
        csp::Solver solver(p);
        benchmark::DoNotOptimize(solver.solve(model));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CspSolve);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("execution_time");
    printExecutionTimeTable();
    printThreadScalingTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
