/**
 * @file
 * Time-to-space unrolling of sequential logic (paper, Section 4.3.3).
 *
 * "The solution we employ in our compiler framework is to statically
 * unroll the code, replicating the entire program for each time step ...
 * with the outputs of one time step serving as the inputs to the
 * subsequent time step."  A D flip-flop instantiated at time t forwards
 * its Q to the same flip-flop's D at time t+1; here that is realized by
 * *merging* the step-t Q net with the step-(t-1) D net, which the QMASM
 * backend later renders as the H_DFF = -sigma_Q sigma_D chain.
 *
 * "In essence, we are trading the program's time dimension for a second
 * spatial dimension. Doing so exacts a heavy toll in qubit count" — the
 * bench_sequential harness quantifies exactly that toll.
 */

#ifndef QAC_NETLIST_UNROLL_H
#define QAC_NETLIST_UNROLL_H

#include <cstddef>
#include <string>

#include "qac/netlist/netlist.h"

namespace qac::netlist {

struct UnrollOptions
{
    /** Separator between a port name and its time step ("out@3"). */
    std::string step_sep = "@";
    /** Expose register initial state as input ports "<reg>@0". */
    bool expose_initial_state = true;
    /** Expose register final state as output ports "<reg>@T". */
    bool expose_final_state = true;
    /** Drop input ports with no fanout (e.g. the clock). */
    bool prune_unused_inputs = true;
};

/**
 * Replicate the combinational logic of @p nl for @p steps time steps
 * (steps >= 1), producing a purely combinational netlist.
 *
 * Original input port "p" becomes "p@0".."p@T-1"; output port "q"
 * becomes "q@0".."q@T-1"; register bits become "<reg>@0" inputs and
 * "<reg>@T" outputs.  Combinational netlists are returned as a plain
 * copy (single step, original port names preserved).
 */
Netlist unrollSequential(const Netlist &nl, size_t steps,
                         const UnrollOptions &opts = {});

} // namespace qac::netlist

#endif // QAC_NETLIST_UNROLL_H
