/**
 * @file
 * Tiny JSON-emission helpers shared by the telemetry serializers.
 * Doubles render with %.17g (round-trip exact) so the JSONL byte
 * identity across thread counts extends to every numeric field;
 * non-finite values render as null (JSON has no Inf/NaN).
 */

#ifndef QAC_TELEMETRY_JSON_UTIL_H
#define QAC_TELEMETRY_JSON_UTIL_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace qac::telemetry::detail {

inline void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

inline void
appendString(std::string &out, std::string_view s)
{
    out += '"';
    appendEscaped(out, s);
    out += '"';
}

inline void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

inline void
appendU64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace qac::telemetry::detail

#endif // QAC_TELEMETRY_JSON_UTIL_H
