#include "qac/service/object_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "qac/artifact/qo.h"
#include "qac/core/program.h"
#include "qac/stats/registry.h"
#include "qac/util/logging.h"

namespace fs = std::filesystem;

namespace qac::service {

namespace {

std::optional<std::string>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof())
        return std::nullopt;
    return ss.str();
}

ObjectInfo
infoFor(const core::CompileResult &result, std::string digest,
        std::string name)
{
    ObjectInfo info;
    info.digest = std::move(digest);
    info.name = std::move(name);
    info.logical_vars = result.stats.logical_vars;
    info.logical_terms = result.stats.logical_terms;
    info.embedded = result.embedded.has_value();
    return info;
}

} // namespace

ObjectStore::ObjectStore(StoreOptions opts) : opts_(opts)
{
    if (opts_.max_loaded == 0)
        opts_.max_loaded = 1;
}

ObjectStore::~ObjectStore() = default;

std::optional<std::string>
ObjectStore::registerFile(const std::string &path, std::string *error)
{
    auto bytes = slurp(path);
    if (!bytes) {
        if (error)
            *error = "cannot read '" + path + "'";
        return std::nullopt;
    }
    std::string digest = artifact::qoDigestHex(*bytes);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(digest);
        if (it != entries_.end()) {
            // Same content, possibly a new path; prefer the newest.
            if (!it->second.pinned)
                it->second.path = path;
            return digest;
        }
    }
    std::string parse_error;
    auto result = artifact::deserializeQo(*bytes, &parse_error);
    if (!result) {
        if (error)
            *error = "'" + path + "': " + parse_error;
        return std::nullopt;
    }
    Entry e;
    e.path = path;
    e.info = infoFor(*result, digest,
                     fs::path(path).stem().string());
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(digest, std::move(e));
    stats::count("service.store.registered");
    return digest;
}

size_t
ObjectStore::registerDir(const std::string &dir)
{
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        warn("serve-dir: cannot open '%s' (%s)", dir.c_str(),
             ec.message().c_str());
        return 0;
    }
    size_t added = 0;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".qo")
            continue;
        std::string error;
        if (registerFile(entry.path().string(), &error))
            ++added;
        else
            warn("serve-dir: skipping %s", error.c_str());
    }
    return added;
}

std::string
ObjectStore::registerResult(core::CompileResult result,
                            std::string name)
{
    std::string bytes = artifact::serializeQo(result);
    std::string digest = artifact::qoDigestHex(bytes);
    Entry e;
    e.info = infoFor(result, digest, std::move(name));
    e.exe = std::make_shared<core::Executable>(std::move(result));
    e.pinned = true;
    std::lock_guard<std::mutex> lock(mu_);
    e.last_use = ++tick_;
    entries_.insert_or_assign(digest, std::move(e));
    stats::count("service.store.registered");
    return digest;
}

bool
ObjectStore::knows(const std::string &digest) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(digest) != 0;
}

std::shared_ptr<const core::Executable>
ObjectStore::acquire(const std::string &digest, ErrorCode *code,
                     std::string *error)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(digest);
        if (it == entries_.end()) {
            if (code)
                *code = ErrorCode::UnknownObject;
            if (error)
                *error = "no registered object with digest " + digest;
            return nullptr;
        }
        if (it->second.exe) {
            it->second.last_use = ++tick_;
            ++hits_;
            stats::count("service.store.hit");
            if (code)
                *code = ErrorCode::Ok;
            return it->second.exe;
        }
        path = it->second.path;
    }

    // Cold: load outside the lock so a slow disk never stalls hits on
    // other objects.
    std::string load_error;
    auto result = artifact::readQoFile(path, &load_error);
    if (!result) {
        if (code)
            *code = ErrorCode::Internal;
        if (error)
            *error = "object " + digest + " unusable: " + load_error;
        return nullptr;
    }
    auto exe =
        std::make_shared<const core::Executable>(std::move(*result));

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(digest);
    if (it == entries_.end()) {
        // Deregistered while loading; serve this request anyway.
        if (code)
            *code = ErrorCode::Ok;
        return exe;
    }
    if (!it->second.exe) {
        it->second.exe = exe;
        it->second.last_use = ++tick_;
        ++misses_;
        stats::count("service.store.miss");
        // The fresh entry's last_use is already stamped, so eviction
        // prefers genuinely older residents; if the cap still claims
        // this one, the caller keeps the loaded copy regardless.
        evictLocked();
        if (code)
            *code = ErrorCode::Ok;
        return exe;
    }
    it->second.last_use = ++tick_;
    if (code)
        *code = ErrorCode::Ok;
    return it->second.exe;
}

void
ObjectStore::evictLocked()
{
    // Count resident, then drop least-recently-used until under cap.
    for (;;) {
        size_t resident = 0;
        std::map<std::string, Entry>::iterator victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.exe || it->second.pinned)
                continue;
            ++resident;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (resident <= opts_.max_loaded || victim == entries_.end())
            return;
        victim->second.exe.reset(); // in-flight holders keep theirs
        ++evictions_;
        stats::count("service.store.evict");
    }
}

std::vector<ObjectInfo>
ObjectStore::list() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ObjectInfo> out;
    out.reserve(entries_.size());
    for (const auto &[digest, e] : entries_) {
        (void)digest;
        out.push_back(e.info);
    }
    return out;
}

size_t
ObjectStore::registered() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

size_t
ObjectStore::loadedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[digest, e] : entries_) {
        (void)digest;
        if (e.exe)
            ++n;
    }
    return n;
}

uint64_t
ObjectStore::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

uint64_t
ObjectStore::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

uint64_t
ObjectStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

} // namespace qac::service
