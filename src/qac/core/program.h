/**
 * @file
 * Executable: a compiled program you can run forward or backward.
 *
 * "The real benefit of our work lies in the ability to run programs not
 * only from inputs to outputs but also from outputs to inputs" (Section
 * 5.1).  Pins bind any subset of ports; the annealer solves for the
 * rest; gate-level asserts verify each returned sample, realizing the
 * paper's check-then-discard loop for NP verifiers (Section 5.2).
 */

#ifndef QAC_CORE_PROGRAM_H
#define QAC_CORE_PROGRAM_H

#include <map>
#include <string>
#include <vector>

#include "qac/anneal/sampleset.h"
#include "qac/core/compiler.h"
#include "qac/core/pins.h"
#include "qac/service/request.h"

namespace qac::core {

class Executable
{
  public:
    explicit Executable(CompileResult compiled);

    const CompileResult &compiled() const { return compiled_; }

    /** Bind a whole port to an integer (LSB = bit 0). */
    void pinPort(const std::string &port, uint64_t value);
    /** Bind one symbol. */
    void pinBit(const std::string &symbol, bool value);
    /** qmasm-style directive, e.g. "C[7:0] := 10001111". */
    void pinDirective(const std::string &directive);
    void clearPins();
    const std::vector<PinSpec> &pins() const { return pins_; }

    /**
     * Execution options: a service::SampleRequest (the single home of
     * the solver/reads/sweeps/seed/threads knobs — shared verbatim
     * with the qmad wire protocol) plus local-only knobs that never
     * travel.  Pins may come from the request's directives and/or the
     * pinPort/pinBit/pinDirective state on the Executable; run() uses
     * the union.
     */
    struct RunOptions : service::SampleRequest
    {
        /** Embedder parameters for re-embedding a reduced model. */
        embed::EmbedParams embed_params;
    };

    /** One distinct returned assignment. */
    struct Candidate
    {
        std::map<std::string, bool> values; ///< visible symbols
        double energy = 0.0;
        uint32_t occurrences = 0;
        bool valid = false;   ///< all gate asserts + pins hold;
                              ///< DIMACS: all hard clauses satisfied
        size_t chain_breaks = 0;
        ising::SpinVector logical_spins;

        /** DIMACS decode (empty/zero for other frontends): the
         *  "v ... 0" model line and clause-satisfaction account. */
        std::string model_line;
        uint64_t clauses_satisfied = 0;
        uint64_t clauses_total = 0;
        double weight_violated = 0.0;
    };

    struct RunResult
    {
        std::vector<Candidate> candidates; ///< unique, best-energy first
        uint64_t total_reads = 0;
        size_t vars_sampled = 0;   ///< after reduction/embedding
        size_t vars_fixed = 0;     ///< elided a priori

        bool hasValid() const;
        const Candidate &bestValid() const;
        std::vector<const Candidate *> validCandidates() const;
        /** Fraction of reads that produced a valid assignment. */
        double validFraction() const;
    };

    RunResult run(const RunOptions &opts) const;
    RunResult run() const { return run(RunOptions()); }

    /** Read a multi-bit port from a candidate (LSB = bit 0). */
    uint64_t portValue(const Candidate &c, const std::string &port)
        const;

    /**
     * Classical forward check (Section 5.2's polynomial-time verify):
     * evaluate the netlist on the given input-port values and return
     * the outputs.
     */
    std::map<std::string, uint64_t>
    evaluate(const std::map<std::string, uint64_t> &inputs) const;

  private:
    CompileResult compiled_;
    std::vector<PinSpec> pins_;

    ising::IsingModel
    pinnedModel(const std::vector<PinSpec> &pins) const;
};

} // namespace qac::core

#endif // QAC_CORE_PROGRAM_H
