#include "qac/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <vector>

namespace qac {

namespace {

// One mutex guards the sink so concurrent warn()/inform() calls never
// interleave their output.
std::mutex logMutex;
std::ostream *logStream = nullptr; // nullptr = stderr
bool informEnabled = true;
std::atomic<int> verbosityLevel{1};

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex);
    if (logStream) {
        *logStream << prefix << ": " << msg << '\n';
        logStream->flush();
    } else {
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    }
}

} // namespace

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    // panic is never suppressed; route through the sink so tests that
    // redirect logging still see the message before the abort.
    emit("panic", msg);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (verbosityLevel.load(std::memory_order_relaxed) < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (verbosityLevel.load(std::memory_order_relaxed) < 1)
        return;
    {
        std::lock_guard<std::mutex> lock(logMutex);
        if (!informEnabled)
            return;
    }
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("info", msg);
}

bool
setInformEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(logMutex);
    bool prev = informEnabled;
    informEnabled = enabled;
    return prev;
}

std::ostream *
setLogStream(std::ostream *stream)
{
    std::lock_guard<std::mutex> lock(logMutex);
    std::ostream *prev = logStream;
    logStream = stream;
    return prev;
}

int
setVerbosity(int level)
{
    return verbosityLevel.exchange(level, std::memory_order_relaxed);
}

int
verbosity()
{
    return verbosityLevel.load(std::memory_order_relaxed);
}

} // namespace qac
