#include "qac/telemetry/telemetry.h"

#include <algorithm>
#include <fstream>

#include "qac/telemetry/json_util.h"

namespace qac::telemetry {

void
ReadRecorder::record(uint64_t sweep, double energy, double schedule,
                     uint64_t accepts, uint64_t proposals)
{
    if (!has_best_ || energy < best_) {
        best_ = energy;
        has_best_ = true;
    }
    SweepPoint p;
    p.sweep = sweep;
    p.energy = energy;
    p.best_energy = best_;
    const uint64_t da = accepts - prev_accepts_;
    const uint64_t dp = proposals - prev_proposals_;
    p.acceptance =
        dp > 0 ? static_cast<double>(da) / static_cast<double>(dp) : 0.0;
    p.schedule = schedule;
    prev_accepts_ = accepts;
    prev_proposals_ = proposals;

    if (capacity_ == 0)
        return;
    if (points_.size() < capacity_) {
        points_.push_back(p);
    } else {
        points_[head_] = p;
        head_ = (head_ + 1) % capacity_;
    }
}

void
ReadRecorder::finish(double final_energy, uint64_t sweeps,
                     uint64_t accepts, uint64_t proposals)
{
    final_energy_ = final_energy;
    sweeps_ = sweeps;
    accepts_ = accepts;
    proposals_ = proposals;
    finished_ = true;
}

std::vector<SweepPoint>
ReadRecorder::chronologicalPoints() const
{
    std::vector<SweepPoint> out;
    out.reserve(points_.size());
    // head_ is the oldest entry once the ring wrapped; before that the
    // vector is already chronological (head_ == 0).
    for (size_t k = 0; k < points_.size(); ++k)
        out.push_back(points_[(head_ + k) % points_.size()]);
    return out;
}

Collector &
Collector::global()
{
    static Collector instance;
    return instance;
}

bool
Collector::setEnabled(bool enabled)
{
    return enabled_.exchange(enabled, std::memory_order_relaxed);
}

void
Collector::configure(const Config &config)
{
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    if (config_.stride == 0)
        config_.stride = 1;
}

Config
Collector::config() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
}

RunTrace *
Collector::beginRun(const char *solver, uint32_t num_reads)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    runs_.emplace_back();
    RunTrace &run = runs_.back();
    run.solver = solver;
    run.num_reads = num_reads;
    const uint32_t traced = std::min(num_reads, config_.max_reads);
    run.reads.resize(traced);
    for (uint32_t r = 0; r < traced; ++r) {
        run.reads[r].read_ = r;
        run.reads[r].stride_ = std::max<uint32_t>(1, config_.stride);
        run.reads[r].capacity_ = config_.capacity;
    }
    return &run;
}

void
Collector::addRecord(std::string json_object)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    extra_.push_back(std::move(json_object));
}

void
Collector::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    runs_.clear();
    extra_.clear();
}

size_t
Collector::numRuns() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
}

namespace {

void
appendReadRecord(std::string &out, const RunTrace &run, size_t run_idx,
                 const ReadRecorder &r)
{
    using detail::appendDouble;
    using detail::appendString;
    using detail::appendU64;

    out += "{\"kind\":\"read\",\"solver\":";
    appendString(out, run.solver);
    out += ",\"run\":";
    appendU64(out, run_idx);
    out += ",\"read\":";
    appendU64(out, r.read());
    out += ",\"final_energy\":";
    appendDouble(out, r.finalEnergy());
    out += ",\"sweeps\":";
    appendU64(out, r.sweeps());
    out += ",\"accepts\":";
    appendU64(out, r.accepts());
    out += ",\"proposals\":";
    appendU64(out, r.proposals());
    out += ",\"points\":[";
    bool first = true;
    for (const SweepPoint &p : r.chronologicalPoints()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"sweep\":";
        appendU64(out, p.sweep);
        out += ",\"energy\":";
        appendDouble(out, p.energy);
        out += ",\"best\":";
        appendDouble(out, p.best_energy);
        out += ",\"accept\":";
        appendDouble(out, p.acceptance);
        out += ",\"schedule\":";
        appendDouble(out, p.schedule);
        out += '}';
    }
    out += "]}\n";
}

} // namespace

std::string
Collector::toJsonl(const std::string &manifest_record) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    if (!manifest_record.empty()) {
        out += manifest_record;
        out += '\n';
    }
    size_t run_idx = 0;
    for (const RunTrace &run : runs_) {
        for (const ReadRecorder &r : run.reads) {
            if (!r.finished())
                continue; // read never executed (skipped sampler path)
            appendReadRecord(out, run, run_idx, r);
        }
        ++run_idx;
    }
    for (const std::string &line : extra_) {
        out += line;
        out += '\n';
    }
    return out;
}

bool
Collector::writeFile(const std::string &path,
                     const std::string &manifest_record) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toJsonl(manifest_record);
    return static_cast<bool>(os);
}

} // namespace qac::telemetry
