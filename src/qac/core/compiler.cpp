#include "qac/core/compiler.h"

#include "qac/cells/gate.h"
#include "qac/edif/reader.h"
#include "qac/edif/writer.h"
#include "qac/netlist/opt.h"
#include "qac/qmasm/stdcell_lib.h"
#include "qac/stats/registry.h"
#include "qac/util/logging.h"
#include "qac/util/strings.h"

namespace qac::core {

namespace {

// Cell-type histogram of the final mapped netlist (the paper's Table 5
// mix), published under netlist.cells.<NAME>.
void
recordCellHistogram(const netlist::Netlist &nl)
{
    if (!stats::Registry::global().enabled())
        return;
    size_t hist[cells::kNumGateTypes] = {};
    for (const auto &g : nl.gates())
        ++hist[static_cast<size_t>(g.type)];
    for (size_t t = 0; t < cells::kNumGateTypes; ++t) {
        if (hist[t] == 0)
            continue;
        stats::gauge(std::string("netlist.cells.") +
                         cells::gateInfo(static_cast<cells::GateType>(t)).name,
                     hist[t]);
    }
}

} // namespace

CompileResult
compile(const std::string &verilog_source, const CompileOptions &opts)
{
    stats::ScopedTimer total_timer("compile.total");

    CompileResult res;
    res.stats.verilog_lines = countLines(verilog_source);

    // 1. Synthesis (the Yosys step).
    verilog::SynthOptions sopts;
    sopts.top_params = opts.top_params;
    netlist::Netlist nl;
    {
        stats::ScopedTimer t("compile.synth");
        nl = verilog::synthesizeSource(verilog_source, opts.top, sopts);
    }

    // 2. Sequential unrolling (Section 4.3.3).
    if (nl.isSequential()) {
        if (opts.unroll_steps == 0)
            fatal("module '%s' is sequential; set unroll_steps",
                  opts.top.c_str());
        stats::ScopedTimer t("compile.unroll");
        nl = netlist::unrollSequential(nl, opts.unroll_steps,
                                       opts.unroll);
    }

    // 3. ABC-style optimization and technology mapping.
    if (opts.optimize) {
        stats::ScopedTimer t("compile.opt");
        netlist::optimize(nl);
    }
    if (opts.do_techmap) {
        {
            stats::ScopedTimer t("compile.techmap");
            netlist::techMap(nl, opts.techmap);
        }
        if (opts.optimize) {
            stats::ScopedTimer t("compile.opt");
            netlist::optimize(nl);
        }
    }

    // 4. EDIF emission and re-ingestion: the pipeline genuinely passes
    // through the interchange format, as the paper's does.
    {
        stats::ScopedTimer t("compile.edif_write");
        res.edif_text = edif::writeEdif(nl);
    }
    res.stats.edif_lines = countLines(res.edif_text);
    {
        stats::ScopedTimer t("compile.edif_read");
        res.netlist = edif::readEdif(res.edif_text);
    }
    recordCellHistogram(res.netlist);

    // 5. edif2qmasm.
    {
        stats::ScopedTimer t("compile.edif2qmasm");
        res.qmasm_program = qmasm::netlistToQmasm(res.netlist);
    }
    {
        // Count the main program without the standard-cell macros, the
        // way Section 6.1 reports "736 lines of QMASM (excluding the
        // 232 lines in the standard-cell library)".
        qmasm::Program main_only;
        main_only.statements = res.qmasm_program.statements;
        res.stats.qmasm_lines = main_only.lineCount();
        res.stats.stdcell_lines = countLines(qmasm::stdcellText());
    }

    // 6. Assembly to the logical Ising model.
    {
        stats::ScopedTimer t("compile.assemble");
        res.assembled = qmasm::assemble(res.qmasm_program, opts.assemble);
    }
    res.stats.gates = res.netlist.numGates();
    res.stats.logical_vars = res.assembled.model.numVars();
    res.stats.logical_terms = res.assembled.model.numTerms();

    // 7. Minor embedding for hardware targets (Section 4.4).  The
    // minorminer stage is memoized through the artifact cache: a warm
    // compile loads the chain map by content address and skips the
    // embedder (and its compile.embed timer) entirely.
    if (opts.target == Target::Chimera) {
        chimera::HardwareGraph hw =
            chimera::chimeraGraph(opts.chimera_size);
        chimera::applyDropout(hw, opts.qubit_dropout, opts.embed.seed);

        embed::EmbedParams embed_params = opts.embed;
        if (embed_params.threads == 0)
            embed_params.threads = opts.threads;

        artifact::Cache cache(opts.cache);
        auto edgesOf = [](const ising::IsingModel &m) {
            std::vector<std::pair<uint32_t, uint32_t>> edges;
            for (const auto &t : m.quadraticTerms())
                edges.emplace_back(t.i, t.j);
            return edges;
        };
        // Probe the cache first; on a miss run minorminer and persist
        // the outcome — including "unembeddable", so warm compiles
        // skip doomed attempts too.
        auto embedCached =
            [&](const ising::IsingModel &model,
                const std::vector<std::pair<uint32_t, uint32_t>> &edges)
            -> std::optional<embed::Embedding> {
            if (cache.enabled()) {
                uint64_t key = artifact::embeddingCacheKey(model, hw,
                                                           embed_params);
                auto probe =
                    artifact::lookupEmbedding(cache, key, edges, hw);
                if (probe.hit) {
                    if (!probe.embeddable)
                        return std::nullopt;
                    return std::move(probe.embedding);
                }
                stats::ScopedTimer t("compile.embed");
                auto emb = embed::findEmbedding(edges, model.numVars(),
                                                hw, embed_params);
                artifact::storeEmbedding(cache, key, emb);
                return emb;
            }
            stats::ScopedTimer t("compile.embed");
            return embed::findEmbedding(edges, model.numVars(), hw,
                                        embed_params);
        };

        auto edges = edgesOf(res.assembled.model);
        auto emb = embedCached(res.assembled.model, edges);
        if (!emb && opts.assemble.merge_chains) {
            // High-fanout nets merge into hub variables whose degree
            // can defeat the embedding heuristic.  Fall back to
            // qmasm's unmerged-chain form: more logical variables,
            // but degree bounded by the cell arity, which embeds far
            // more easily.
            warn("embedding the merged model failed; retrying with "
                 "unmerged chains");
            stats::count("embed.unmerged_retries");
            qmasm::AssembleOptions unmerged = opts.assemble;
            unmerged.merge_chains = false;
            res.assembled = qmasm::assemble(res.qmasm_program, unmerged);
            res.stats.logical_vars = res.assembled.model.numVars();
            res.stats.logical_terms = res.assembled.model.numTerms();
            edges = edgesOf(res.assembled.model);
            emb = embedCached(res.assembled.model, edges);
        }
        if (!emb)
            fatal("could not embed %zu logical variables into C%u",
                  res.assembled.model.numVars(), opts.chimera_size);
        res.embedding = std::move(*emb);
        {
            stats::ScopedTimer t("compile.embed_model");
            res.embedded = embed::embedModel(res.assembled.model,
                                             *res.embedding, hw,
                                             opts.embed_model);
        }
        res.hardware = std::move(hw);
        res.stats.physical_qubits = res.embedded->numPhysicalQubits();
        res.stats.physical_terms = res.embedded->physical.numTerms();
        res.stats.max_chain_length = res.embedding->maxChainLength();
    }

    stats::gauge("compile.gates", res.stats.gates);
    stats::gauge("compile.logical_vars", res.stats.logical_vars);
    stats::gauge("compile.logical_terms", res.stats.logical_terms);
    if (res.embedded) {
        stats::gauge("compile.physical_qubits", res.stats.physical_qubits);
        stats::gauge("compile.physical_terms", res.stats.physical_terms);
        stats::gauge("compile.max_chain_length",
                     res.stats.max_chain_length);
    }
    return res;
}

} // namespace qac::core
