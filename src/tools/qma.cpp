/**
 * @file
 * qma — a standalone QMASM runner (the paper's qmasm tool).
 *
 *   qma program.qmasm --pin "A := true" --run
 *   qma program.qmasm --emit-minizinc out.mzn
 *   qma program.qmasm --run --reads 5000 --solver sqa
 *   qma run design.qo --pin "C[7:0] := 10001111"
 *
 * Mirrors the qmasm behaviours the paper lists in Section 4.3: resolves
 * !include (the built-in stdcell.qmasm plus the input file's
 * directory), accepts --pin to bias variables, "can run a program
 * arbitrarily many times and report statistics on the results", and
 * reports solutions "in terms of the program-specified symbolic names".
 *
 * The `run` subcommand executes a compiled .qo object (artifact
 * subsystem, written by `qacc -o`) without recompiling: the snapshot
 * already carries the logical Ising model, symbol table, and — for
 * Chimera-target compiles — the minor embedding.  At equal seeds its
 * results are bitwise-identical to `qacc --run` on the same design.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qac/anneal/sampler.h"
#include "qac/artifact/qo.h"
#include "qac/core/program.h"
#include "qac/exec/exec.h"
#include "qac/qmasm/assemble.h"
#include "qac/qmasm/formats.h"
#include "qac/qmasm/parser.h"
#include "qac/qmasm/stdcell_lib.h"
#include "qac/stats/trace.h"
#include "qac/telemetry/analyze.h"
#include "qac/util/logging.h"
#include "qac/util/strings.h"
#include "tools/tool_options.h"

namespace {

using namespace qac;

struct Args
{
    bool object_mode = false; ///< "qma run <file.qo>"
    std::string input;
    std::vector<std::string> pins;
    bool run = false;
    bool physical = false;
    uint32_t reads = 1000;
    uint32_t sweeps = 256;
    bool reads_set = false;  ///< --reads given explicitly
    bool sweeps_set = false; ///< --sweeps given explicitly
    uint64_t seed = 1;
    std::string solver = "sa";
    std::string emit_minizinc, emit_qubo;
    size_t top_solutions = 8;
    tools::CommonOptions common;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <program.qmasm> [options]\n"
                 "       %s run <design.qo> [options]\n"
                 "  --pin \"SYM := VAL\"   bias a variable (repeatable)\n"
                 "  --run                 anneal and report statistics\n"
                 "  --physical            sample the embedded physical "
                 "model (run mode)\n"
                 "  --reads/--sweeps/--seed <N>\n"
                 "  --solver %s\n"
                 "  --top <N>             solutions to print (default 8)\n"
                 "  --emit-minizinc <f>   convert for classical solution\n"
                 "  --emit-qubo <f>       convert to qbsolv format\n"
                 "%s",
                 argv0, argv0, anneal::samplerNamesJoined().c_str(),
                 tools::commonUsage());
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (tools::parseCommonFlag(args.common, argc, argv, i))
            continue;
        if (a == "--pin")
            args.pins.push_back(need(i));
        else if (a == "--run")
            args.run = true;
        else if (a == "--physical")
            args.physical = true;
        else if (a == "--reads") {
            args.reads = static_cast<uint32_t>(
                tools::parseUint("--reads", need(i), UINT32_MAX));
            args.reads_set = true;
        } else if (a == "--sweeps") {
            args.sweeps = static_cast<uint32_t>(
                tools::parseUint("--sweeps", need(i), UINT32_MAX));
            args.sweeps_set = true;
        }
        else if (a == "--seed")
            args.seed = tools::parseUint("--seed", need(i));
        else if (a == "--solver")
            args.solver = need(i);
        else if (a == "--top")
            args.top_solutions = static_cast<size_t>(
                tools::parseUint("--top", need(i)));
        else if (a == "--emit-minizinc")
            args.emit_minizinc = need(i);
        else if (a == "--emit-qubo")
            args.emit_qubo = need(i);
        else if (a == "--help" || a == "-h")
            usage(argv[0]);
        else if (!a.empty() && a[0] == '-')
            usage(argv[0]);
        else if (!args.object_mode && args.input.empty() && a == "run")
            args.object_mode = true;
        else if (args.input.empty())
            args.input = a;
        else
            usage(argv[0]);
    }
    if (args.input.empty())
        usage(argv[0]);
    return args;
}

/**
 * `qma run <design.qo>`: execute a compiled object.  The report
 * format deliberately matches `qacc --run` line for line, so the two
 * paths can be diffed directly (and are, in cli_test).
 */
int
runObject(Args &args, const char *argv0)
{
    const bool chatty = args.common.verbosity > 0;

    std::string err;
    auto compiled = artifact::readQoFile(args.input, &err);
    if (!compiled)
        fatal("cannot load '%s': %s", args.input.c_str(), err.c_str());
    if (chatty)
        std::printf("%s: %zu logical variables, %zu terms%s\n",
                    args.input.c_str(),
                    compiled->stats.logical_vars,
                    compiled->stats.logical_terms,
                    compiled->embedded ? " (embedded)" : "");

    core::Executable prog(std::move(*compiled));
    for (const auto &pin : args.pins)
        prog.pinDirective(pin);

    // Object mode is a drop-in for `qacc --run`, so unflagged runs
    // use the compiler driver's defaults, not qma's qmasm defaults —
    // otherwise the two paths would sample different landscapes and
    // the line-for-line report identity above would not hold.
    if (!args.reads_set)
        args.reads = 500;
    if (!args.sweeps_set)
        args.sweeps = 512;

    if (args.common.stats || !args.common.telemetry_file.empty())
        args.common.manifest.qo_digest =
            artifact::qoFileDigestHex(args.input);
    args.common.manifest.param("reads", uint64_t{args.reads});
    args.common.manifest.param("sweeps", uint64_t{args.sweeps});

    core::Executable::RunOptions ro;
    ro.num_reads = args.reads;
    ro.sweeps = args.sweeps;
    ro.seed = args.seed;
    ro.threads = args.common.threads;
    ro.use_physical = args.physical;
    if (args.physical)
        ro.reduce = false;
    ro.solver = args.solver;
    if (!anneal::makeSampler(args.solver, {})) {
        std::fprintf(stderr, "qma: unknown solver '%s' (expected %s)\n",
                     args.solver.c_str(),
                     anneal::samplerNamesJoined().c_str());
        usage(argv0);
    }

    auto rr = prog.run(ro);
    if (chatty) {
        std::printf("reads: %llu, distinct candidates: %zu, valid "
                    "fraction: %.3f\n",
                    static_cast<unsigned long long>(rr.total_reads),
                    rr.candidates.size(), rr.validFraction());
        size_t shown = 0;
        for (const auto *c : rr.validCandidates()) {
            std::printf("solution (energy %.4f, %u reads):\n",
                        c->energy, c->occurrences);
            for (const auto &[sym, value] : c->values)
                std::printf("  %s = %d\n", sym.c_str(),
                            static_cast<int>(value));
            if (++shown >= 3 && args.common.verbosity < 2) {
                std::printf("  ... (%zu more valid solutions)\n",
                            rr.validCandidates().size() - shown);
                break;
            }
        }
    }
    return rr.hasValid() ? 0 : 1;
}

} // namespace

int
runQma(Args &args, const char *argv0)
{
    const bool chatty = args.common.verbosity > 0;
    {
        std::ifstream in(args.input);
        if (!in)
            fatal("cannot read '%s'", args.input.c_str());
        std::stringstream ss;
        ss << in.rdbuf();

        // Includes resolve against the built-in standard-cell library
        // first, then the input file's directory.
        std::filesystem::path dir =
            std::filesystem::path(args.input).parent_path();
        auto builtin = qmasm::stdcellResolver();
        qmasm::IncludeResolver resolver =
            [&](const std::string &name) -> std::optional<std::string> {
            if (auto text = builtin(name))
                return text;
            std::ifstream f(dir / name);
            if (!f)
                return std::nullopt;
            std::stringstream fs;
            fs << f.rdbuf();
            return fs.str();
        };

        std::string text = ss.str();
        // --pin appends pin statements, exactly like qmasm's flag.
        for (const auto &pin : args.pins)
            text += "\n" + pin + "\n";

        qmasm::Program prog = qmasm::parseProgram(text, resolver);
        qmasm::Assembled assembled = qmasm::assemble(prog);
        if (chatty)
            std::printf("%zu variables, %zu terms (chain strength "
                        "%.2f)\n",
                        assembled.model.numVars(),
                        assembled.model.numTerms(),
                        assembled.chain_strength_used);

        if (!args.emit_minizinc.empty()) {
            std::ofstream out(args.emit_minizinc);
            out << qmasm::toMiniZinc(assembled);
        }
        if (!args.emit_qubo.empty()) {
            std::ofstream out(args.emit_qubo);
            out << qmasm::toQuboFile(
                ising::QuboModel::fromIsing(assembled.model));
        }
        if (!args.run)
            return 0;

        // Every registered sampler is available by name.  A logical
        // model carries no physical chain groups, so "chainflip" here
        // runs with no composite moves (single-qubit relaxation only).
        anneal::SamplerOpts sopts;
        sopts.common.num_reads = args.reads;
        sopts.common.seed = args.seed;
        sopts.common.threads = args.common.threads;
        sopts.sweeps = args.sweeps;
        auto sampler = anneal::makeSampler(args.solver, sopts);
        if (!sampler) {
            std::fprintf(stderr, "qma: unknown solver '%s' (expected "
                         "%s)\n", args.solver.c_str(),
                         anneal::samplerNamesJoined().c_str());
            usage(argv0);
        }
        const uint64_t t0 = stats::Trace::nowNs();
        anneal::SampleSet set = sampler->sample(assembled.model);
        const uint64_t sample_elapsed = stats::Trace::nowNs() - t0;

        // Success probability / residual energy / TTS analytics over
        // the sample set (solution-quality instrumentation).
        if (stats::Registry::global().enabled() ||
            telemetry::Collector::global().enabled()) {
            telemetry::AnalyzeOptions aopts;
            aopts.elapsed_ns = sample_elapsed;
            aopts.sweeps_per_read = args.sweeps;
            telemetry::Analysis an = telemetry::analyze(set, aopts);
            telemetry::recordAnalysisStats(an);
            if (telemetry::Collector::global().enabled())
                telemetry::Collector::global().addRecord(
                    telemetry::analysisJson(args.solver, an));
        }

        // The qmasm-style statistics report.
        if (chatty) {
            std::printf("reads: %llu, distinct solutions: %zu, ground "
                        "fraction: %.3f\n\n",
                        static_cast<unsigned long long>(
                            set.totalReads()),
                        set.size(), set.groundFraction());
            size_t shown = 0;
            for (const auto &s : set.samples()) {
                std::string failed;
                bool ok = assembled.checkAsserts(s.spins, &failed);
                std::printf(
                    "solution %zu: energy %.4f, %u/%llu reads%s\n",
                    shown + 1, s.energy, s.num_occurrences,
                    static_cast<unsigned long long>(set.totalReads()),
                    ok ? "" : "  [assert FAILED]");
                if (!ok)
                    std::printf("    failing assert: %s\n",
                                failed.c_str());
                for (const auto &[sym, value] :
                     assembled.visibleValues(s.spins))
                    std::printf("    %s = %s\n", sym.c_str(),
                                value ? "True" : "False");
                if (++shown >= args.top_solutions)
                    break;
            }
        }
        return 0;
    }
}

int
main(int argc, char **argv)
{
    // Argument parsing sits inside the try: parseUint() and friends
    // report bad input via fatal(), which must exit cleanly too.
    Args args;
    int ret;
    try {
        args = parseArgs(argc, argv);
        tools::applyCommonOptions(args.common);
        args.common.manifest = telemetry::Manifest::make("qma");
        args.common.manifest.input = args.input;
        args.common.manifest.seed = args.seed;
        args.common.manifest.threads = static_cast<uint32_t>(
            exec::resolveThreads(args.common.threads));
        args.common.manifest.param("solver", args.solver);
        args.common.manifest.param("reads", uint64_t{args.reads});
        args.common.manifest.param("sweeps", uint64_t{args.sweeps});
        args.common.manifest.param(
            "physical", uint64_t{args.physical ? 1u : 0u});
        if (!args.pins.empty())
            args.common.manifest.param(
                "pins", qac::join(args.pins, "; "));
        ret = args.object_mode ? runObject(args, argv[0])
                               : runQma(args, argv[0]);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "qma: %s\n", e.what());
        ret = 2;
    }
    tools::finishCommonOptions(args.common);
    return ret;
}
