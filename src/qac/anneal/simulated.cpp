#include "qac/anneal/simulated.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "qac/anneal/anneal_stats.h"
#include "qac/anneal/descent.h"
#include "qac/anneal/metropolis.h"
#include "qac/anneal/parallel_reads.h"
#include "qac/ising/compiled.h"
#include "qac/stats/trace.h"
#include "qac/telemetry/telemetry.h"
#include "qac/util/logging.h"

namespace qac::anneal {

namespace {

/**
 * exp(-x) for x above this is below the resolution of Rng::uniform()
 * (53 bits), so an uphill move this steep can be rejected without
 * paying for the exp() call.
 */
constexpr double kMaxExpArg = 40.0;

} // namespace

std::pair<double, double>
SimulatedAnnealer::defaultBetaRange(const ising::CompiledModel &kernel)
{
    // Hot end: the largest possible |delta E| flips with probability
    // ~1/2.  Cold end: the smallest nonzero field barely flips.
    double max_local = 0.0;
    double min_scale = std::numeric_limits<double>::infinity();
    const auto &row = kernel.rowOffsets();
    const auto &w = kernel.weights();
    for (uint32_t i = 0; i < kernel.numVars(); ++i) {
        double local = std::abs(kernel.linear(i));
        if (local > 0)
            min_scale = std::min(min_scale, local);
        for (uint32_t k = row[i]; k < row[i + 1]; ++k) {
            local += std::abs(w[k]);
            if (w[k] != 0.0)
                min_scale = std::min(min_scale, std::abs(w[k]));
        }
        max_local = std::max(max_local, local);
    }
    if (max_local <= 0.0)
        return {0.1, 1.0};
    if (!std::isfinite(min_scale))
        min_scale = max_local;
    double beta_hot = std::log(2.0) / (2.0 * max_local);
    double beta_cold = std::log(100.0) / (2.0 * min_scale);
    if (beta_cold <= beta_hot)
        beta_cold = beta_hot * 10.0;
    return {beta_hot, beta_cold};
}

std::pair<double, double>
SimulatedAnnealer::defaultBetaRange(const ising::IsingModel &model)
{
    return defaultBetaRange(ising::CompiledModel(model));
}

SampleSet
SimulatedAnnealer::sample(const ising::IsingModel &model) const
{
    const size_t n = model.numVars();
    SampleSet out;
    if (n == 0) {
        out.finalize();
        return out;
    }

    stats::ScopedTimer timer("anneal.sa.time");
    const uint64_t t0 = stats::Trace::nowNs();

    const ising::CompiledModel kernel(model);

    auto [b0, b1] = defaultBetaRange(kernel);
    if (params_.beta_initial > 0)
        b0 = params_.beta_initial;
    if (params_.beta_final > 0)
        b1 = params_.beta_final;

    const uint32_t sweeps = std::max<uint32_t>(1, params_.sweeps);
    // Geometric beta schedule.
    std::vector<double> betas(sweeps);
    double ratio = (sweeps > 1)
                       ? std::pow(b1 / b0, 1.0 / (sweeps - 1))
                       : 1.0;
    double b = b0;
    for (uint32_t s = 0; s < sweeps; ++s) {
        betas[s] = b;
        b *= ratio;
    }

    std::atomic<uint64_t> flips{0};
    telemetry::RunTrace *trun =
        telemetry::Collector::global().beginRun("sa",
                                                params_.num_reads);

    out = detail::sampleReads(
        params_.num_reads, params_.threads,
        [&](uint32_t read, SampleSet &part) {
            Rng rng = Rng::streamAt(params_.seed, read);
            ising::SpinVector spins(n);
            for (auto &s : spins)
                s = rng.spin();
            ising::LocalFieldState state(kernel);
            state.reset(spins);
            // Null while telemetry is disabled: the per-sweep hook
            // below degrades to one pointer test per sweep.
            telemetry::ReadRecorder *rec =
                trun ? trun->recorder(read) : nullptr;

            // With a monotone (heating) schedule, a sweep that draws
            // nothing proves the state frozen: every variable sat at
            // delta >= thresh, no flip was possible, and every
            // remaining sweep would make the same rejections while
            // consuming no randomness — skipping them is bitwise
            // identical.
            const bool monotone = ratio >= 1.0;
            uint32_t sweeps_done = sweeps;
            for (uint32_t s = 0; s < sweeps; ++s) {
                const double beta = betas[s];
                const double thresh = kMaxExpArg / beta;
                bool drew = false;
                for (uint32_t i = 0; i < n; ++i) {
                    // O(1) proposal off the maintained flip delta.
                    // Everything below the cutoff — downhill included
                    // — goes through one uniform draw, leaving the
                    // accept-or-not below as the sweep's only
                    // data-dependent branch (downhill deltas always
                    // accept; see metropolisAccept).
                    const double delta = state.flipDelta(i);
                    if (delta >= thresh)
                        continue;
                    drew = true;
                    if (metropolisAccept(rng, beta * delta))
                        state.flip(i);
                }
                // Proposals are counted as n per sweep (the thresh
                // skip is a rejection taken early).
                if (rec && rec->want(s))
                    rec->record(s, state.energy(), beta,
                                state.flips(), uint64_t{s + 1} * n);
                if (monotone && !drew) {
                    sweeps_done = s + 1;
                    break;
                }
            }
            if (params_.greedy_polish)
                greedyDescent(state);
            // One exact end-of-read evaluation (the inner loops never
            // recompute the full Hamiltonian).
            double e = kernel.energy(state.spins());
            stats::record("anneal.sa.energy", e);
            flips.fetch_add(state.flips(), std::memory_order_relaxed);
            if (rec)
                rec->finish(e, sweeps_done, state.flips(),
                            uint64_t{sweeps_done} * n);
            part.add(state.spins(), e);
        });
    const uint64_t elapsed = stats::Trace::nowNs() - t0;
    detail::recordSampleStats("sa", out,
                              uint64_t{sweeps} * params_.num_reads,
                              elapsed);
    detail::recordKernelStats("sa",
                              flips.load(std::memory_order_relaxed),
                              elapsed);
    return out;
}

} // namespace qac::anneal
