/**
 * @file
 * Deterministic solver telemetry (DESIGN.md §11).
 *
 * Every sampler can record per-read sweep traces — energy, best-so-far,
 * acceptance rate, and the schedule point (beta / Gamma / outer
 * iteration) — into a per-read ring buffer at a configurable stride.
 * Reads own disjoint pre-allocated slots, so worker threads record
 * without locks and the serialized output is assembled in read-index
 * order: the JSONL sink is bitwise-identical for any --threads setting
 * (the determinism contract of anneal/sampler.h, extended to
 * observability).
 *
 * Cost model: the collector is DISABLED by default.  A disabled run
 * hands the samplers a null run handle, so the per-sweep hook is one
 * pointer test; no energy recomputation, no allocation.  Enabled runs
 * pay O(n) per *recorded* sweep (one lazy tracked-energy evaluation),
 * amortized by the stride.
 *
 * Serialization is qac-telemetry-v1 JSON Lines: one manifest record,
 * then one record per read in (run, read) order, then any appended
 * records (chain diagnostics, analysis) in append order.  Wall-clock
 * quantities are deliberately excluded from the JSONL so the byte
 * identity above holds; they live in the --stats report instead.
 */

#ifndef QAC_TELEMETRY_TELEMETRY_H
#define QAC_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace qac::telemetry {

/** Knobs for the per-read sweep traces (--telemetry-stride/-capacity). */
struct Config
{
    /** Record every stride-th sweep (sweep % stride == 0); min 1. */
    uint32_t stride = 1;
    /** Ring capacity: keep the last N recorded points per read.
     *  0 keeps only the read summary (no points). */
    uint32_t capacity = 256;
    /** Trace at most this many reads per run (by read index, so the
     *  cut is deterministic); service-style runs stay bounded. */
    uint32_t max_reads = 4096;
};

/** One recorded schedule point within a read. */
struct SweepPoint
{
    uint64_t sweep = 0;      ///< sweep index within the read
    double energy = 0.0;     ///< tracked energy after the sweep
    double best_energy = 0.0; ///< best recorded energy so far
    double acceptance = 0.0; ///< accepted / proposed since last point
    double schedule = 0.0;   ///< beta (SA), Gamma (SQA), iteration, ...
};

/**
 * Per-read ring-buffer recorder.  One instance per traced read, owned
 * by the collector; samplers receive a pointer (null when the read is
 * untraced) and call want()/record() per sweep plus one finish().
 * Not thread-safe per instance — each read runs on exactly one thread.
 */
class ReadRecorder
{
  public:
    /** Cheap stride test; callers skip the energy evaluation on a
     *  negative, so untraced sweeps cost one modulo. */
    bool want(uint64_t sweep) const
    {
        return stride_ <= 1 || sweep % stride_ == 0;
    }

    /** Record one schedule point.  @p accepts / @p proposals are
     *  cumulative over the read; the window acceptance is derived from
     *  the deltas since the previous point. */
    void record(uint64_t sweep, double energy, double schedule,
                uint64_t accepts, uint64_t proposals);

    /** Seal the read with its final (exact) energy and totals. */
    void finish(double final_energy, uint64_t sweeps, uint64_t accepts,
                uint64_t proposals);

    /** Ring contents, oldest first (unrolls the ring). */
    std::vector<SweepPoint> chronologicalPoints() const;

    uint32_t read() const { return read_; }
    bool finished() const { return finished_; }
    double finalEnergy() const { return final_energy_; }
    uint64_t sweeps() const { return sweeps_; }
    uint64_t accepts() const { return accepts_; }
    uint64_t proposals() const { return proposals_; }

  private:
    friend class Collector;
    friend struct RunTrace;

    uint32_t read_ = 0;
    uint32_t stride_ = 1;
    uint32_t capacity_ = 256;
    std::vector<SweepPoint> points_; ///< ring once size == capacity_
    size_t head_ = 0;                ///< next overwrite slot when full
    bool has_best_ = false;
    bool finished_ = false;
    double best_ = 0.0;
    double final_energy_ = 0.0;
    uint64_t sweeps_ = 0, accepts_ = 0, proposals_ = 0;
    uint64_t prev_accepts_ = 0, prev_proposals_ = 0;
};

/** One sampler invocation's traces: a slot per traced read. */
struct RunTrace
{
    std::string solver;
    uint32_t num_reads = 0; ///< reads requested (>= reads traced)
    std::vector<ReadRecorder> reads;

    /** Slot for @p read, or nullptr beyond the max_reads cut. */
    ReadRecorder *recorder(uint32_t read)
    {
        return read < reads.size() ? &reads[read] : nullptr;
    }
};

/**
 * Process-wide telemetry collector.  beginRun() returns nullptr while
 * disabled — the samplers' fast path.  Run handles stay valid until
 * clear() (runs live in a deque).
 */
class Collector
{
  public:
    static Collector &global();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    /** @return the previous setting. */
    bool setEnabled(bool enabled);

    void configure(const Config &config);
    Config config() const;

    /**
     * Open a run of @p num_reads reads for @p solver.  Returns nullptr
     * when disabled.  Call from the thread that owns the sample() call,
     * before fanning reads out.
     */
    RunTrace *beginRun(const char *solver, uint32_t num_reads);

    /** Append one extra JSONL record (a serialized JSON object, no
     *  trailing newline) — chain diagnostics, analysis, ... */
    void addRecord(std::string json_object);

    /** Drop all runs and extra records; keeps enabled + config. */
    void clear();

    /**
     * Serialize to qac-telemetry-v1 JSON Lines.  @p manifest_record,
     * when non-empty, becomes the first line verbatim.  Deterministic:
     * records appear in (run, read) order regardless of the thread
     * count the runs executed under.
     */
    std::string toJsonl(const std::string &manifest_record = {}) const;

    /** Write toJsonl() to @p path; false on I/O failure. */
    bool writeFile(const std::string &path,
                   const std::string &manifest_record = {}) const;

    size_t numRuns() const;

  private:
    mutable std::mutex mu_;
    std::deque<RunTrace> runs_;
    std::vector<std::string> extra_;
    Config config_;
    std::atomic<bool> enabled_{false};
};

} // namespace qac::telemetry

#endif // QAC_TELEMETRY_TELEMETRY_H
