#include "qac/anneal/pathintegral.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "qac/anneal/anneal_stats.h"
#include "qac/anneal/descent.h"
#include "qac/anneal/metropolis.h"
#include "qac/anneal/parallel_reads.h"
#include "qac/ising/compiled.h"
#include "qac/stats/trace.h"
#include "qac/telemetry/telemetry.h"
#include "qac/util/logging.h"
#include "qac/util/rng.h"

namespace qac::anneal {

SampleSet
PathIntegralAnnealer::sample(const ising::IsingModel &model) const
{
    const size_t n = model.numVars();
    SampleSet out;
    if (n == 0) {
        out.finalize();
        return out;
    }

    stats::ScopedTimer timer("anneal.sqa.time");
    const uint64_t t0 = stats::Trace::nowNs();

    const uint32_t slices = std::max<uint32_t>(2, params_.trotter_slices);
    const double beta_slice = params_.beta / slices;

    double max_scale = std::max(model.maxAbsLinear(),
                                model.maxAbsQuadratic());
    if (max_scale <= 0)
        max_scale = 1.0;
    double g0 = params_.gamma_initial > 0 ? params_.gamma_initial
                                          : 3.0 * max_scale;
    double g1 = std::max(params_.gamma_final, 1e-6);

    const ising::CompiledModel kernel(model);
    const uint32_t sweeps = std::max<uint32_t>(2, params_.sweeps);
    std::atomic<uint64_t> flips{0};
    telemetry::RunTrace *trun =
        telemetry::Collector::global().beginRun("sqa",
                                                params_.num_reads);

    out = detail::sampleReads(
        params_.num_reads, params_.threads,
        [&](uint32_t read, SampleSet &part) {
        Rng rng = Rng::streamAt(params_.seed, read);
        telemetry::ReadRecorder *rec =
            trun ? trun->recorder(read) : nullptr;
        // Replica-major layout: one incremental field state per
        // Trotter slice; the inter-slice coupling is handled on top of
        // each slice's classical delta.
        std::vector<ising::LocalFieldState> rep(
            slices, ising::LocalFieldState(kernel));
        {
            ising::SpinVector init(n);
            for (auto &state : rep) {
                for (auto &s : init)
                    s = rng.spin();
                state.reset(init);
            }
        }

        for (uint32_t t = 0; t < sweeps; ++t) {
            double frac = static_cast<double>(t) / (sweeps - 1);
            // Linear Gamma ramp in log space (smooth schedule).
            double gamma = g0 * std::pow(g1 / g0, frac);
            double x = std::tanh(gamma * beta_slice);
            // Ferromagnetic inter-slice coupling; grows as Gamma -> 0.
            double jperp =
                -0.5 / beta_slice * std::log(std::max(x, 1e-300));

            for (uint32_t m = 0; m < slices; ++m) {
                const auto &up = rep[(m + 1) % slices].spins();
                const auto &dn = rep[(m + slices - 1) % slices].spins();
                auto &cur = rep[m];
                for (uint32_t i = 0; i < n; ++i) {
                    // Classical part from the O(1) incremental field;
                    // imaginary-time neighbors added explicitly.
                    // delta is already in units of beta * E.
                    double delta =
                        beta_slice * cur.flipDelta(i) +
                        2.0 * cur.spin(i) * jperp * beta_slice *
                            (up[i] + dn[i]);
                    if (delta <= 0.0 ||
                        metropolisAccept(rng, delta))
                        cur.flip(i);
                }
            }
            if (rec && rec->want(t)) {
                // Best tracked replica energy; the schedule point is
                // the transverse field Gamma.
                double e_min = rep[0].energy();
                uint64_t accepts = rep[0].flips();
                for (uint32_t m = 1; m < slices; ++m) {
                    e_min = std::min(e_min, rep[m].energy());
                    accepts += rep[m].flips();
                }
                rec->record(t, e_min, gamma, accepts,
                            uint64_t{t + 1} * slices * n);
            }
        }

        // Report the best replica, greedy-polished (the D-Wave also
        // applies classical postprocessing by default).  The tracked
        // energies pick the winner; the reported value is one exact
        // end-of-read evaluation.
        uint32_t best_m = 0;
        for (uint32_t m = 1; m < slices; ++m)
            if (rep[m].energy() < rep[best_m].energy())
                best_m = m;
        ising::LocalFieldState &best = rep[best_m];
        greedyDescent(best);
        double e = kernel.energy(best.spins());
        stats::record("anneal.sqa.energy", e);
        uint64_t read_flips = 0;
        for (const auto &state : rep)
            read_flips += state.flips();
        flips.fetch_add(read_flips, std::memory_order_relaxed);
        if (rec)
            rec->finish(e, sweeps, read_flips,
                        uint64_t{sweeps} * slices * n);
        part.add(best.spins(), e);
    });
    const uint64_t elapsed = stats::Trace::nowNs() - t0;
    // Each sweep touches every Trotter slice once.
    detail::recordSampleStats("sqa", out,
                              uint64_t{sweeps} * slices *
                                  params_.num_reads,
                              elapsed);
    detail::recordKernelStats("sqa",
                              flips.load(std::memory_order_relaxed),
                              elapsed);
    return out;
}

} // namespace qac::anneal
