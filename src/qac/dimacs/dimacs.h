/**
 * @file
 * DIMACS CNF/WCNF frontend: parsing and solution decoding.
 *
 * Accepts the standard SAT-competition formats (Bian et al., "Solving
 * SAT and MaxSAT with a Quantum Annealer"):
 *
 *   c comment lines (and blank lines) anywhere
 *   p cnf  <vars> <clauses>
 *   p wcnf <vars> <clauses> [<top>]
 *   1 -5 4 0              a clause, zero-terminated
 *   3 1 -5 4 0            (wcnf) weight-prefixed clause
 *
 * Parsing is strict: a missing/duplicate `p` line, an out-of-range
 * literal, a clause without its 0 terminator, a clause-count mismatch
 * with the header, or a non-positive wcnf weight are all fatal errors
 * naming the offending line.  The SATLIB convention of ending a file
 * with a lone `%` line is accepted (everything after it is ignored).
 *
 * WCNF semantics: a clause whose weight is >= the header's top weight
 * is *hard*; every other clause is *soft* with its literal weight.  A
 * wcnf header without a top value makes every clause soft (the
 * original weighted-MaxSAT dialect).  Plain cnf makes every clause
 * hard with unit penalty weight, so the lowered model's ground states
 * are maximum-satisfiability assignments whether or not the instance
 * is satisfiable.
 *
 * DecodeInfo is the frontend's decode metadata: everything needed to
 * map a sampled spin assignment back to a DIMACS `v`-line model and a
 * clause-satisfaction account *without the original source* — it
 * travels inside .qo objects, so `qma run instance.qo` and a qmad
 * daemon report exactly what a local `qacc --run` reports.
 */

#ifndef QAC_DIMACS_DIMACS_H
#define QAC_DIMACS_DIMACS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qac::dimacs {

/** One clause: nonzero literals, DIMACS sign convention. */
struct Clause
{
    std::vector<int32_t> lits;
    uint64_t weight = 1; ///< as written (wcnf); 1 for cnf
    bool hard = true;    ///< cnf clause, or wcnf weight >= top
};

/** A parsed CNF/WCNF instance. */
struct Instance
{
    uint32_t num_vars = 0;
    bool weighted = false;   ///< from a `p wcnf` header
    uint64_t top_weight = 0; ///< wcnf hard-clause threshold; 0 = none
    std::vector<Clause> clauses;
};

/**
 * Parse DIMACS text.  Throws FatalError on malformed input, with the
 * 1-based line number in the message.
 */
Instance parseDimacs(const std::string &text);

/**
 * Decode metadata for one lowered instance (see lower.h).  Stored in
 * core::CompileResult and serialized into .qo objects; the clause
 * list plus the x<i> symbol naming convention (varSymbol) is the
 * variable<->spin map that lets any executor reconstruct the model
 * line and the satisfaction account.
 */
struct DecodeInfo
{
    uint32_t num_vars = 0;
    bool weighted = false;
    uint64_t top_weight = 0;
    /** Penalty applied to each hard clause (auto: soft total + 1). */
    double hard_weight = 1.0;
    /** Constant such that  penalty(sigma) = H(sigma) + offset :
     *  a zero-violation assignment sits at energy -offset. */
    double energy_offset = 0.0;
    uint32_t num_ancillas = 0;    ///< OR-gadget ancillas emitted
    uint32_t shared_ancillas = 0; ///< reuse hits across sub-clauses
    std::vector<Clause> clauses;
};

/** The logical-model symbol naming DIMACS variable @p var (1-based). */
std::string varSymbol(uint32_t var);

/** Assignment accessor: true/false for each 1-based variable. */
using AssignmentFn = std::function<bool(uint32_t var)>;

/** Clause-satisfaction account of one assignment. */
struct ClauseEval
{
    uint64_t clauses_satisfied = 0;
    uint64_t clauses_total = 0;
    uint64_t hard_unsatisfied = 0;
    /** Total written weight of unsatisfied soft clauses (for cnf,
     *  where every clause is hard, the number of unsatisfied ones). */
    double violated_weight = 0.0;

    bool hardOk() const { return hard_unsatisfied == 0; }
};

ClauseEval evaluateClauses(const DecodeInfo &info,
                           const AssignmentFn &value);

/**
 * The DIMACS model line for an assignment: "v 1 -2 3 ... 0" with one
 * literal per variable in index order.
 */
std::string modelLine(const DecodeInfo &info, const AssignmentFn &value);

/** Brute-force oracle result over the original (non-ancilla) vars. */
struct Optimum
{
    /** Minimum total violated soft weight over assignments satisfying
     *  the maximum possible set of hard clauses. */
    double violated_weight = 0.0;
    uint64_t hard_unsatisfied = 0; ///< 0 iff hard clauses satisfiable
    std::vector<bool> assignment;  ///< one optimal witness, [0]=var 1
};

/**
 * Enumerate all 2^num_vars assignments (the exact reference every
 * stochastic result is tested against).  Hard clauses dominate
 * lexicographically: minimize unsatisfied hard clauses first, then
 * violated soft weight.  Fatal when num_vars > @p max_vars.
 */
Optimum bruteForceOptimum(const Instance &inst, uint32_t max_vars = 26);

} // namespace qac::dimacs

#endif // QAC_DIMACS_DIMACS_H
