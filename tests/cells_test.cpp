/**
 * @file
 * Tests for the standard-cell library (Table 5) and gate metadata.
 *
 * The central property: every cell Hamiltonian's ground-state set,
 * minimized over ancillas, equals the gate's truth table exactly —
 * verified exhaustively for every cell (paper, Section 4.3.2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "qac/cells/gate.h"
#include "qac/cells/stdcell.h"
#include "qac/ising/solution.h"
#include "qac/util/logging.h"

namespace qac::cells {
namespace {

using ising::boolToSpin;
using ising::SpinVector;

const GateType kCombinational[] = {
    GateType::NOT,  GateType::AND,  GateType::OR,   GateType::NAND,
    GateType::NOR,  GateType::XOR,  GateType::XNOR, GateType::MUX,
    GateType::AOI3, GateType::OAI3, GateType::AOI4, GateType::OAI4,
};

TEST(Gate, MetadataArities)
{
    EXPECT_EQ(gateInfo(GateType::NOT).inputs.size(), 1u);
    EXPECT_EQ(gateInfo(GateType::MUX).inputs.size(), 3u);
    EXPECT_EQ(gateInfo(GateType::AOI4).inputs.size(), 4u);
    EXPECT_STREQ(gateInfo(GateType::DFF_P).output, "Q");
    EXPECT_TRUE(gateInfo(GateType::DFF_N).sequential);
    EXPECT_FALSE(gateInfo(GateType::XOR).sequential);
}

TEST(Gate, LookupByName)
{
    EXPECT_EQ(gateTypeByName("AOI3"), GateType::AOI3);
    EXPECT_EQ(gateTypeByName("DFF_P"), GateType::DFF_P);
    EXPECT_THROW(gateTypeByName("FOO"), FatalError);
}

TEST(Gate, EvalTruthTables)
{
    // Spot checks against the paper's logic column.
    EXPECT_TRUE(evalGate(GateType::AND, 0b11));
    EXPECT_FALSE(evalGate(GateType::AND, 0b01));
    EXPECT_TRUE(evalGate(GateType::NAND, 0b01));
    EXPECT_TRUE(evalGate(GateType::XOR, 0b10));
    EXPECT_FALSE(evalGate(GateType::XOR, 0b11));
    // MUX inputs (A, B, S): Y = S ? B : A.
    EXPECT_TRUE(evalGate(GateType::MUX, 0b001));  // S=0 -> A=1
    EXPECT_FALSE(evalGate(GateType::MUX, 0b101)); // S=1 -> B=0
    EXPECT_TRUE(evalGate(GateType::MUX, 0b110));  // S=1 -> B=1
    // AOI4: Y = !((A&B) | (C&D)).
    EXPECT_FALSE(evalGate(GateType::AOI4, 0b0011));
    EXPECT_FALSE(evalGate(GateType::AOI4, 0b1100));
    EXPECT_TRUE(evalGate(GateType::AOI4, 0b0110));
}

TEST(Gate, EvalOnSequentialDies)
{
    EXPECT_DEATH((void)evalGate(GateType::DFF_P, 0), "sequential");
}

/** Exhaustively recompute min-over-ancilla energies for a cell. */
void
checkGroundStatesMatchTruthTable(const CellHamiltonian &cell)
{
    const GateInfo &info = gateInfo(cell.type);
    size_t num_in = info.inputs.size();
    size_t out_idx = cell.varIndex(info.output);
    std::vector<size_t> in_idx;
    for (const auto &name : info.inputs)
        in_idx.push_back(cell.varIndex(name));
    std::vector<size_t> anc_idx;
    for (size_t i = 0; i < cell.varNames.size(); ++i)
        if (cell.varNames[i][0] == '$')
            anc_idx.push_back(i);

    auto row_min = [&](uint32_t row) {
        bool y = row & 1;
        uint32_t in_bits = row >> 1;
        SpinVector spins(cell.varNames.size(), -1);
        spins[out_idx] = boolToSpin(y);
        for (size_t b = 0; b < num_in; ++b)
            spins[in_idx[b]] = boolToSpin((in_bits >> b) & 1);
        double m = std::numeric_limits<double>::infinity();
        for (uint32_t a = 0; a < (1u << anc_idx.size()); ++a) {
            for (size_t b = 0; b < anc_idx.size(); ++b)
                spins[anc_idx[b]] = boolToSpin((a >> b) & 1);
            m = std::min(m, cell.H.energy(spins));
        }
        return m;
    };
    auto is_valid = [&](uint32_t row) {
        bool y = row & 1;
        uint32_t in_bits = row >> 1;
        return info.sequential ? (y == ((in_bits & 1) != 0))
                               : (evalGate(cell.type, in_bits) == y);
    };
    // Pass 1: establish the ground energy from the valid rows.
    double k = std::numeric_limits<double>::infinity();
    for (uint32_t row = 0; row < (1u << (num_in + 1)); ++row)
        if (is_valid(row))
            k = std::min(k, row_min(row));
    // Pass 2: check every row against it.
    for (uint32_t row = 0; row < (1u << (num_in + 1)); ++row) {
        double m = row_min(row);
        if (is_valid(row))
            EXPECT_NEAR(m, k, 1e-9) << info.name << " valid row " << row;
        else
            EXPECT_GT(m, k + 1e-9) << info.name << " invalid row " << row;
    }
}

class PaperCellTest : public ::testing::TestWithParam<GateType>
{};

/** Every literal Table 5 entry is a correct penalty function. */
TEST_P(PaperCellTest, VerifiesExhaustively)
{
    CellHamiltonian cell = paperCell(GetParam());
    std::string err;
    EXPECT_TRUE(verifyCell(cell, &err)) << err;
    checkGroundStatesMatchTruthTable(cell);
}

/** Table 5 honors the D-Wave coefficient box h [-2,2], J [-2,1]. */
TEST_P(PaperCellTest, WithinHardwareRange)
{
    CellHamiltonian cell = paperCell(GetParam());
    EXPECT_TRUE(cell.H.withinRange(ising::CoefficientRange{}));
}

/** Gaps are strictly positive (robust hardware output, Section 4.3.2). */
TEST_P(PaperCellTest, PositiveGap)
{
    CellHamiltonian cell = paperCell(GetParam());
    ASSERT_TRUE(verifyCell(cell));
    EXPECT_GT(cell.gap, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinational, PaperCellTest, ::testing::ValuesIn(kCombinational),
    [](const auto &info) {
        return std::string(gateInfo(info.param).name);
    });

TEST(PaperCell, DffIsPlainChain)
{
    CellHamiltonian cell = paperCell(GateType::DFF_P);
    EXPECT_EQ(cell.H.numTerms(), 1u);
    EXPECT_DOUBLE_EQ(cell.H.quadratic(0, 1), -1.0);
    EXPECT_TRUE(verifyCell(cell));
    EXPECT_DOUBLE_EQ(cell.groundEnergy, -1.0);
    EXPECT_DOUBLE_EQ(cell.gap, 2.0);
}

TEST(PaperCell, KnownGroundEnergies)
{
    // From the text: simple 2-input gates sit at k = -1.5 with gap 2.
    for (GateType t : {GateType::AND, GateType::OR, GateType::NAND,
                       GateType::NOR}) {
        CellHamiltonian cell = paperCell(t);
        ASSERT_TRUE(verifyCell(cell));
        EXPECT_NEAR(cell.groundEnergy, -1.5, 1e-9);
        EXPECT_NEAR(cell.gap, 2.0, 1e-9);
    }
}

TEST(PaperCell, BufHasNoCell)
{
    EXPECT_THROW(paperCell(GateType::BUF), FatalError);
    EXPECT_THROW(standardCell(GateType::BUF), FatalError);
}

class ComposedCellTest : public ::testing::TestWithParam<GateType>
{};

/** The Section 4.3.5 composition rule also yields correct cells. */
TEST_P(ComposedCellTest, VerifiesExhaustively)
{
    CellHamiltonian cell = composedCell(GetParam());
    std::string err;
    EXPECT_TRUE(verifyCell(cell, &err)) << err;
    checkGroundStatesMatchTruthTable(cell);
}

INSTANTIATE_TEST_SUITE_P(
    ComplexCells, ComposedCellTest,
    ::testing::Values(GateType::XNOR, GateType::MUX, GateType::AOI3,
                      GateType::OAI3, GateType::AOI4, GateType::OAI4),
    [](const auto &info) {
        return std::string(gateInfo(info.param).name);
    });

TEST(StandardCell, CachedAndVerified)
{
    const CellHamiltonian &a = standardCell(GateType::AND);
    const CellHamiltonian &b = standardCell(GateType::AND);
    EXPECT_EQ(&a, &b); // same cached object
    EXPECT_GT(a.gap, 0.0);
}

TEST(CellHamiltonian, VarIndexLookup)
{
    CellHamiltonian cell = paperCell(GateType::MUX);
    EXPECT_EQ(cell.varNames[cell.varIndex("S")], "S");
    EXPECT_THROW(cell.varIndex("Z"), FatalError);
    EXPECT_EQ(cell.numAncillas(), 1u);
}

TEST(VerifyCell, DetectsBrokenCell)
{
    CellHamiltonian cell = paperCell(GateType::AND);
    cell.H.addLinear(0, 5.0); // wreck it
    std::string err;
    EXPECT_FALSE(verifyCell(cell, &err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace qac::cells
