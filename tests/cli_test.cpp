/**
 * @file
 * End-to-end smoke tests for the command-line tools qacc and qma,
 * invoked as real subprocesses (paths injected by CMake).
 */

#include <gtest/gtest.h>

#include <array>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include <unistd.h>

namespace {

/** Run a command, capturing stdout; returns (exit code, output). */
std::pair<int, std::string>
run(const std::string &cmd)
{
    std::string output;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return {-1, ""};
    std::array<char, 4096> buf;
    while (fgets(buf.data(), buf.size(), pipe))
        output += buf.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

std::string
writeTemp(const std::string &name, const std::string &text)
{
    std::string path = std::string(::testing::TempDir()) + name;
    std::ofstream out(path);
    out << text;
    return path;
}

const char *kMult = R"(
module mult (A, B, C);
  input [1:0] A, B;
  output [3:0] C;
  assign C = A * B;
endmodule
)";

TEST(Qacc, CompileAndRunBackward)
{
    std::string v = writeTemp("cli_mult.v", kMult);
    auto [code, out] = run(std::string(QACC_PATH) + " " + v +
                           " --top mult --run --solver exact "
                           "--pin \"C[3:0] := 0110\"");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("logical variables"), std::string::npos) << out;
    EXPECT_NE(out.find("solution"), std::string::npos) << out;
}

TEST(Qacc, EmitsArtifacts)
{
    std::string v = writeTemp("cli_mult2.v", kMult);
    std::string base = std::string(::testing::TempDir()) + "cli_out";
    auto [code, out] = run(std::string(QACC_PATH) + " " + v +
                           " --top mult --emit-edif " + base +
                           ".edif --emit-qmasm " + base +
                           ".qmasm --emit-minizinc " + base +
                           ".mzn --emit-qubo " + base + ".qubo");
    EXPECT_EQ(code, 0) << out;
    for (const char *ext : {".edif", ".qmasm", ".mzn", ".qubo"}) {
        std::ifstream f(base + ext);
        EXPECT_TRUE(f.good()) << ext;
        std::string first;
        std::getline(f, first);
        EXPECT_FALSE(first.empty()) << ext;
    }
}

TEST(Qacc, BadUsageFails)
{
    auto [code1, out1] = run(std::string(QACC_PATH));
    EXPECT_EQ(code1, 2);
    EXPECT_NE(out1.find("usage"), std::string::npos);
    auto [code2, out2] =
        run(std::string(QACC_PATH) + " /nonexistent.v --top x");
    EXPECT_EQ(code2, 2);
    (void)out2;
}

TEST(Qacc, StatsReportAndTrace)
{
    std::string v = writeTemp("cli_mult3.v", kMult);
    std::string stats_file =
        std::string(::testing::TempDir()) + "cli_stats.json";
    std::string trace_file =
        std::string(::testing::TempDir()) + "cli_trace.json";
    // --no-cache keeps the run hermetic: a warm embedding cache would
    // legitimately skip minorminer and its stats.
    auto [code, out] = run(std::string(QACC_PATH) + " " + v +
                           " --top mult --target chimera --no-cache "
                           "--chimera-size 8 --stats=" + stats_file +
                           " --trace-json=" + trace_file + " --stats");
    EXPECT_EQ(code, 0) << out;

    // Text report: per-stage wall times, per-pass gate deltas, cell
    // histogram, and embedding chain-length stats.
    EXPECT_NE(out.find("[compile]"), std::string::npos) << out;
    EXPECT_NE(out.find("opt.const_fold.gates_removed"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("cells."), std::string::npos) << out;
    EXPECT_NE(out.find("minorminer.chain_len"), std::string::npos)
        << out;

    // JSON report: nonzero gate count and embedding stats present.
    std::ifstream jf(stats_file);
    ASSERT_TRUE(jf.good());
    std::string json((std::istreambuf_iterator<char>(jf)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"schema\":\"qac-stats-v1\""),
              std::string::npos);
    size_t gates_at =
        json.find("\"path\":\"compile.gates\",\"kind\":\"counter\","
                  "\"value\":");
    ASSERT_NE(gates_at, std::string::npos) << json;
    size_t value_at =
        json.find("\"value\":", gates_at) + strlen("\"value\":");
    EXPECT_GT(std::stoul(json.substr(value_at)), 0u);
    EXPECT_NE(json.find("\"path\":\"compile.physical_qubits\""),
              std::string::npos);

    // Chrome trace: traceEvents array with complete slices.
    std::ifstream tf(trace_file);
    ASSERT_TRUE(tf.good());
    std::string trace((std::istreambuf_iterator<char>(tf)),
                      std::istreambuf_iterator<char>());
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"compile.total\""),
              std::string::npos);
}

TEST(Qacc, QuietSuppressesOutput)
{
    std::string v = writeTemp("cli_mult4.v", kMult);
    auto [code, out] = run(std::string(QACC_PATH) + " " + v +
                           " --top mult --quiet --run --solver exact "
                           "--pin \"C[3:0] := 0110\"");
    EXPECT_EQ(code, 0) << out;
    EXPECT_TRUE(out.empty()) << out;
}

TEST(Qacc, TopInferredForSingleModule)
{
    std::string v = writeTemp("cli_mult5.v", kMult);
    auto [code, out] = run(std::string(QACC_PATH) + " " + v);
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("mult:"), std::string::npos) << out;
}

TEST(Qma, RunsListing4Backward)
{
    // The paper's Listing 4: AND3 from two ANDs; pin Y, solve inputs.
    std::string q = writeTemp("cli_and3.qmasm", R"(
!include "stdcell.qmasm"
!begin_macro AND3
  !use_macro AND a1
  !use_macro AND a2
  A = a2.A
  B = a2.B
  C = a1.B
  Y = a1.Y
  a1.A = a2.Y
!end_macro AND3
!use_macro AND3 my_and
my_and.Y := true
)");
    auto [code, out] = run(std::string(QMA_PATH) + " " + q +
                           " --run --solver exact --top 1");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("my_and.A = True"), std::string::npos) << out;
    EXPECT_NE(out.find("my_and.B = True"), std::string::npos) << out;
    EXPECT_NE(out.find("my_and.C = True"), std::string::npos) << out;
}

TEST(Qma, LocalIncludeResolution)
{
    std::string lib = writeTemp("cli_lib.qmasm",
                                "!begin_macro BIAS\nX -1\n"
                                "!end_macro BIAS\n");
    (void)lib;
    std::string q = writeTemp("cli_main.qmasm",
                              "!include \"cli_lib.qmasm\"\n"
                              "!use_macro BIAS g\n");
    auto [code, out] =
        run(std::string(QMA_PATH) + " " + q + " --run --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("g.X = True"), std::string::npos) << out;
}

TEST(Qma, QuietAndVerboseFlags)
{
    std::string q = writeTemp("cli_quiet.qmasm",
                              "!begin_macro BIAS\nX -1\n"
                              "!end_macro BIAS\n"
                              "!use_macro BIAS g\n");
    auto [qcode, qout] = run(std::string(QMA_PATH) + " " + q +
                             " --quiet --run --solver exact");
    EXPECT_EQ(qcode, 0) << qout;
    EXPECT_TRUE(qout.empty()) << qout;

    auto [vcode, vout] = run(std::string(QMA_PATH) + " " + q +
                             " -v --run --solver exact");
    EXPECT_EQ(vcode, 0) << vout;
    EXPECT_NE(vout.find("g.X = True"), std::string::npos) << vout;
}

TEST(Qma, StatsReport)
{
    std::string q = writeTemp("cli_stats.qmasm",
                              "!begin_macro BIAS\nX -1\n"
                              "!end_macro BIAS\n"
                              "!use_macro BIAS g\n");
    auto [code, out] = run(std::string(QMA_PATH) + " " + q +
                           " --stats --run --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("[qmasm]"), std::string::npos) << out;
    EXPECT_NE(out.find("assemble.vars"), std::string::npos) << out;
    EXPECT_NE(out.find("[anneal]"), std::string::npos) << out;
}

TEST(Qma, FactorySolversAndThreads)
{
    // Every registered sampler is reachable via --solver, including
    // the previously unexposed descent and chainflip; --threads must
    // not change the answer.
    std::string q = writeTemp("cli_solvers.qmasm",
                              "!begin_macro BIAS\nX -1\n"
                              "!end_macro BIAS\n"
                              "!use_macro BIAS g\n");
    for (const char *solver :
         {"sa", "sqa", "descent", "chainflip", "qbsolv"}) {
        auto [code, out] =
            run(std::string(QMA_PATH) + " " + q + " --run --solver " +
                solver + " --reads 50 --threads 4");
        EXPECT_EQ(code, 0) << solver << ": " << out;
        EXPECT_NE(out.find("g.X = True"), std::string::npos)
            << solver << ": " << out;
    }
}

TEST(Qma, UnknownSolverListsChoices)
{
    std::string q = writeTemp("cli_unknown_solver.qmasm", "X -1\n");
    auto [code, out] = run(std::string(QMA_PATH) + " " + q +
                           " --run --solver nope");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("descent"), std::string::npos) << out;
    EXPECT_NE(out.find("chainflip"), std::string::npos) << out;
}

TEST(Qma, BadInputFails)
{
    std::string q = writeTemp("cli_bad.qmasm", "A B C D E\n");
    auto [code, out] = run(std::string(QMA_PATH) + " " + q);
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("qma:"), std::string::npos);
}

// ------------------------------------------------- dimacs frontend

// Unit clauses force the unique model x1=F, x2=T, x3=F.
const char *kCnf = "c crafted: unique model -1 2 -3\n"
                   "p cnf 3 5\n"
                   "1 2 0\n"
                   "-1 0\n"
                   "2 3 0\n"
                   "-3 0\n"
                   "2 0\n";

// Hard exactly-one over (x1,x2); softs pull both ways; optimum
// keeps x1 (w3) and x3 (w4), giving up x2 (w2).
const char *kWcnf = "p wcnf 3 5 10\n"
                    "10 1 2 0\n"
                    "10 -1 -2 0\n"
                    "3 1 0\n"
                    "2 2 0\n"
                    "4 3 0\n";

TEST(Qsat, SolvesCraftedCnf)
{
    std::string f = writeTemp("cli_sat.cnf", kCnf);
    auto [code, out] =
        run(std::string(QSAT_PATH) + " " + f + " --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("s SATISFIABLE\n"), std::string::npos) << out;
    EXPECT_NE(out.find("v -1 2 -3 0\n"), std::string::npos) << out;
    EXPECT_NE(out.find("satisfied 5/5"), std::string::npos) << out;
    EXPECT_EQ(out.find("\no "), std::string::npos) << out; // cnf: no o line
}

TEST(Qsat, WeightedOptimumAndQuiet)
{
    std::string f = writeTemp("cli_sat.wcnf", kWcnf);
    auto [code, out] =
        run(std::string(QSAT_PATH) + " " + f + " --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("o 2\n"), std::string::npos) << out;
    EXPECT_NE(out.find("s SATISFIABLE\n"), std::string::npos) << out;
    EXPECT_NE(out.find("v 1 -2 3 0\n"), std::string::npos) << out;

    // --quiet drops the c comments but keeps the o/s/v verdict.
    auto [qcode, qout] = run(std::string(QSAT_PATH) + " " + f +
                             " --quiet --solver exact");
    EXPECT_EQ(qcode, 0) << qout;
    EXPECT_EQ(qout, "o 2\ns SATISFIABLE\nv 1 -2 3 0\n") << qout;
}

TEST(Qsat, BadUsageAndMissingFileFail)
{
    auto [c1, o1] = run(std::string(QSAT_PATH));
    EXPECT_EQ(c1, 2);
    EXPECT_NE(o1.find("usage"), std::string::npos) << o1;
    auto [c2, o2] = run(std::string(QSAT_PATH) + " /nonexistent.cnf");
    EXPECT_EQ(c2, 2);
    EXPECT_NE(o2.find("qsat:"), std::string::npos) << o2;
}

TEST(Qacc, DimacsAutoDetectedFromExtension)
{
    std::string f = writeTemp("cli_auto.cnf", kCnf);
    auto [code, out] = run(std::string(QACC_PATH) + " " + f +
                           " --run --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("logical variables"), std::string::npos) << out;
    EXPECT_NE(out.find("v -1 2 -3 0"), std::string::npos) << out;
    EXPECT_NE(out.find("satisfied 5/5 clauses"), std::string::npos)
        << out;
}

TEST(Qacc, LangFlagOverridesUnknownExtension)
{
    std::string f = writeTemp("cli_lang.txt", kCnf);
    auto [code, out] = run(std::string(QACC_PATH) + " " + f +
                           " --lang dimacs --run --solver exact");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("v -1 2 -3 0"), std::string::npos) << out;
}

TEST(Qacc, UnknownExtensionFailsCleanly)
{
    std::string f = writeTemp("cli_noext.txt", kCnf);
    auto [code, out] = run(std::string(QACC_PATH) + " " + f);
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("cannot infer a source language"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("--lang"), std::string::npos) << out;
}

TEST(Qsat, QoDecodeMatchesEverywhere)
{
    // The acceptance criterion: the same .qo produces the identical
    // decoded model line via qsat, `qma run`, and a qmad daemon.
    std::string f = writeTemp("cli_sat_qo.cnf", kCnf);
    std::string qo = std::string(::testing::TempDir()) + "cli_sat.qo";
    auto [ccode, cout_] = run(std::string(QSAT_PATH) + " " + f +
                              " --solver exact -o " + qo);
    ASSERT_EQ(ccode, 0) << cout_;
    EXPECT_NE(cout_.find("v -1 2 -3 0"), std::string::npos) << cout_;

    const std::string runflags = " --solver exact --reads 32 --seed 7";
    auto [lcode, lout] =
        run(std::string(QMA_PATH) + " run " + qo + runflags);
    EXPECT_EQ(lcode, 0) << lout;
    EXPECT_NE(lout.find("v -1 2 -3 0"), std::string::npos) << lout;
    EXPECT_NE(lout.find("satisfied 5/5 clauses"), std::string::npos)
        << lout;

    std::string sock =
        std::string(::testing::TempDir()) + "cli_sat.sock";
    ::unlink(sock.c_str());
    FILE *daemon = popen(("echo $$; exec " + std::string(QMAD_PATH) +
                          " --socket " + sock + " " + qo + " 2>&1")
                             .c_str(),
                         "r");
    ASSERT_NE(daemon, nullptr);
    std::array<char, 4096> buf;
    ASSERT_NE(fgets(buf.data(), buf.size(), daemon), nullptr);
    pid_t pid = static_cast<pid_t>(std::stol(buf.data()));
    bool up = false;
    for (int i = 0; i < 500 && !up; ++i) {
        up = ::access(sock.c_str(), F_OK) == 0;
        if (!up)
            ::usleep(10000);
    }
    ASSERT_TRUE(up) << "qmad never created " << sock;

    auto [rcode, rout] = run(std::string(QMA_PATH) + " client " +
                             sock + " " + qo + runflags);
    EXPECT_EQ(rcode, 0) << rout;
    EXPECT_EQ(lout, rout); // byte-identical, model lines included

    ::kill(pid, SIGTERM);
    while (fgets(buf.data(), buf.size(), daemon))
        ;
    pclose(daemon);
    ::unlink(sock.c_str());
}

// ------------------------------------------------- artifact subsystem

/** The run report from "reads:" onward (drops tool-specific headers). */
std::string
reportTail(const std::string &out)
{
    size_t at = out.find("reads:");
    return at == std::string::npos ? out : out.substr(at);
}

TEST(Artifact, ObjectFileCompileRunFlow)
{
    // qacc -o emits a .qo object; `qma run` executes it with results
    // identical (from the run report onward) to the in-process path.
    std::string v = writeTemp("cli_mult_qo.v", kMult);
    std::string qo = std::string(::testing::TempDir()) + "cli_mult.qo";
    const std::string runflags =
        " --solver exact --reads 64 --sweeps 64 --seed 7 "
        "--pin \"C[3:0] := 0110\"";

    auto [ccode, cout_] = run(std::string(QACC_PATH) + " " + v +
                              " --top mult --no-cache -o " + qo);
    EXPECT_EQ(ccode, 0) << cout_;
    std::ifstream f(qo, std::ios::binary);
    ASSERT_TRUE(f.good());
    char magic[4] = {};
    f.read(magic, 4);
    EXPECT_EQ(std::string(magic, 4), "QACO");

    auto [dcode, dout] = run(std::string(QACC_PATH) + " " + v +
                             " --top mult --no-cache --run" + runflags);
    EXPECT_EQ(dcode, 0) << dout;
    auto [ocode, oout] =
        run(std::string(QMA_PATH) + " run " + qo + runflags);
    EXPECT_EQ(ocode, 0) << oout;

    EXPECT_NE(dout.find("solution"), std::string::npos) << dout;
    EXPECT_EQ(reportTail(dout), reportTail(oout));
}

TEST(Artifact, QmaRunRejectsCorruptObject)
{
    std::string bad = writeTemp("cli_bad.qo", "QACOnot really");
    auto [code, out] = run(std::string(QMA_PATH) + " run " + bad);
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("qma:"), std::string::npos) << out;
    EXPECT_NE(out.find("truncated"), std::string::npos) << out;
}

TEST(Artifact, CacheCountersInStatsJson)
{
    std::string v = writeTemp("cli_mult_cache.v", kMult);
    std::string cdir = std::string(::testing::TempDir()) +
        "cli_qac_cache." + std::to_string(::getpid());
    std::string s1 =
        std::string(::testing::TempDir()) + "cli_cache_cold.json";
    std::string s2 =
        std::string(::testing::TempDir()) + "cli_cache_warm.json";
    std::string base = std::string(QACC_PATH) + " " + v +
        " --top mult --target chimera --chimera-size 8 --cache-dir " +
        cdir;

    auto slurp = [](const std::string &path) {
        std::ifstream f(path);
        return std::string((std::istreambuf_iterator<char>(f)),
                           std::istreambuf_iterator<char>());
    };

    auto [c1, o1] = run(base + " --stats=" + s1);
    EXPECT_EQ(c1, 0) << o1;
    std::string cold = slurp(s1);
    EXPECT_NE(cold.find("\"path\":\"qac.cache.miss\""),
              std::string::npos)
        << cold;
    EXPECT_EQ(cold.find("\"path\":\"qac.cache.hit\""),
              std::string::npos)
        << cold;

    auto [c2, o2] = run(base + " --stats=" + s2);
    EXPECT_EQ(c2, 0) << o2;
    std::string warm = slurp(s2);
    EXPECT_NE(warm.find("\"path\":\"qac.cache.hit\""),
              std::string::npos)
        << warm;
    // A warm compile never enters the embedder: no compile.embed
    // timer (compile.embed_model, a different metric, still runs).
    EXPECT_EQ(warm.find("\"path\":\"compile.embed\","),
              std::string::npos)
        << warm;
    EXPECT_NE(warm.find("\"path\":\"compile.embed_model\""),
              std::string::npos)
        << warm;
}

TEST(Telemetry, JsonlThreadInvariantWithChainsAndAnalysis)
{
    // The acceptance scenario: compile a multiplier onto Chimera,
    // run it physically with telemetry on, and require the JSONL to
    // be byte-identical between --threads 1 and --threads 8 while
    // carrying every record kind (manifest, read, chains, analysis).
    std::string v = writeTemp("cli_mult_tel.v", kMult);
    std::string qo = std::string(::testing::TempDir()) + "cli_tel.qo";
    auto [ccode, cout_] =
        run(std::string(QACC_PATH) + " " + v +
            " --top mult --target chimera --chimera-size 8 "
            "--no-cache -o " + qo);
    ASSERT_EQ(ccode, 0) << cout_;

    auto slurp = [](const std::string &path) {
        std::ifstream f(path);
        return std::string((std::istreambuf_iterator<char>(f)),
                           std::istreambuf_iterator<char>());
    };
    auto sample = [&](int threads, const std::string &tag) {
        std::string tel = std::string(::testing::TempDir()) +
            "cli_tel_" + tag + ".jsonl";
        std::string st = std::string(::testing::TempDir()) +
            "cli_tel_" + tag + ".json";
        auto [code, out] =
            run(std::string(QMA_PATH) + " run " + qo +
                " --physical --solver chainflip --reads 12 "
                "--sweeps 32 --seed 5 --threads " +
                std::to_string(threads) + " --telemetry=" + tel +
                " --telemetry-stride 4 --stats=" + st);
        EXPECT_EQ(code, 0) << out;
        return std::pair{slurp(tel), slurp(st)};
    };
    auto [jsonl1, stats1] = sample(1, "t1");
    auto [jsonl8, stats8] = sample(8, "t8");

    EXPECT_FALSE(jsonl1.empty());
    EXPECT_EQ(jsonl1, jsonl8);

    // First line is the provenance manifest; the rest cover reads,
    // chain diagnostics, and the TTS analysis.
    EXPECT_EQ(jsonl1.rfind("{\"schema\":\"qac-telemetry-v1\","
                           "\"kind\":\"manifest\"",
                           0),
              0u)
        << jsonl1.substr(0, 200);
    EXPECT_NE(jsonl1.find("\"kind\":\"read\""), std::string::npos);
    EXPECT_NE(jsonl1.find("\"kind\":\"chains\""), std::string::npos);
    EXPECT_NE(jsonl1.find("\"kind\":\"analysis\""),
              std::string::npos);
    EXPECT_NE(jsonl1.find("\"tts99_reads\""), std::string::npos);
    EXPECT_NE(jsonl1.find("\"thread_invariant\":true"),
              std::string::npos);

    // The stats JSON embeds the same provenance manifest (which does
    // include the thread count, hence not byte-compared here).
    EXPECT_NE(stats1.find("\"manifest\":{"), std::string::npos);
    EXPECT_NE(stats1.find("\"qo_digest\""), std::string::npos);
    EXPECT_NE(stats1.find("\"threads\":1"), std::string::npos);
    EXPECT_NE(stats8.find("\"threads\":8"), std::string::npos);
    EXPECT_NE(stats1.find("anneal.chains.break_rate"),
              std::string::npos);
    EXPECT_NE(stats1.find("anneal.analysis.success_probability"),
              std::string::npos);
}

// ------------------------------------------------- service layer

TEST(Qmad, ClientMatchesLocalRunAndDrainsOnSigterm)
{
    // The redesign's acceptance criterion, end to end over real
    // processes: a `qma client` query against a running qmad prints
    // byte-for-byte what `qma run` prints locally, and SIGTERM drains
    // the daemon to a clean exit.
    std::string v = writeTemp("cli_qmad.v", kMult);
    std::string qo = std::string(::testing::TempDir()) + "cli_qmad.qo";
    std::string sock =
        std::string(::testing::TempDir()) + "cli_qmad.sock";
    ::unlink(sock.c_str());

    auto [ccode, cout_] = run(std::string(QACC_PATH) + " " + v +
                              " --top mult --no-cache -o " + qo);
    ASSERT_EQ(ccode, 0) << cout_;

    // `echo $$; exec qmad` keeps the shell's pid for the daemon, so
    // the first output line tells us whom to SIGTERM; pclose() then
    // reports the daemon's own exit status.
    FILE *daemon = popen(("echo $$; exec " + std::string(QMAD_PATH) +
                          " --socket " + sock + " " + qo + " 2>&1")
                             .c_str(),
                         "r");
    ASSERT_NE(daemon, nullptr);
    std::array<char, 4096> buf;
    ASSERT_NE(fgets(buf.data(), buf.size(), daemon), nullptr);
    pid_t pid = static_cast<pid_t>(std::stol(buf.data()));
    ASSERT_GT(pid, 0);

    // Wait for the socket to appear (the daemon prints its banner
    // after listen(), but the filesystem check needs no extra fd).
    bool up = false;
    for (int i = 0; i < 500 && !up; ++i) {
        up = ::access(sock.c_str(), F_OK) == 0;
        if (!up)
            ::usleep(10000);
    }
    ASSERT_TRUE(up) << "qmad never created " << sock;

    const std::string runflags =
        " --solver exact --reads 64 --seed 7 "
        "--pin \"C[3:0] := 0110\"";
    auto [lcode, lout] =
        run(std::string(QMA_PATH) + " run " + qo + runflags);
    EXPECT_EQ(lcode, 0) << lout;
    auto [rcode, rout] = run(std::string(QMA_PATH) + " client " +
                             sock + " " + qo + runflags);
    EXPECT_EQ(rcode, 0) << rout;
    EXPECT_EQ(lout, rout); // byte-identical, headers included
    EXPECT_NE(rout.find("solution"), std::string::npos) << rout;

    // Replaying the same (seed, request id) remotely reproduces too.
    auto [r2code, r2out] = run(std::string(QMA_PATH) + " client " +
                               sock + " " + qo + runflags +
                               " --request-id 3");
    EXPECT_EQ(r2code, 0) << r2out;
    auto [r3code, r3out] = run(std::string(QMA_PATH) + " client " +
                               sock + " " + qo + runflags +
                               " --request-id 3");
    EXPECT_EQ(r3code, 0) << r3out;
    EXPECT_EQ(r2out, r3out);

    // Graceful shutdown: SIGTERM -> drain -> exit 0.
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    std::string tail;
    while (fgets(buf.data(), buf.size(), daemon))
        tail += buf.data();
    int status = pclose(daemon);
    EXPECT_TRUE(WIFEXITED(status)) << tail;
    EXPECT_EQ(WEXITSTATUS(status), 0) << tail;
    EXPECT_NE(tail.find("qmad: draining"), std::string::npos) << tail;
    ::unlink(sock.c_str());
}

TEST(Qmad, ClientReportsServerErrors)
{
    auto [code, out] = run(std::string(QMA_PATH) +
                           " client /nonexistent.sock deadbeef "
                           "--solver exact");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("qma:"), std::string::npos) << out;
}

TEST(Cli, BadNumericFlagsFailCleanly)
{
    std::string v = writeTemp("cli_badnum.v", kMult);
    auto [c1, o1] = run(std::string(QACC_PATH) + " " + v +
                        " --top mult --reads banana");
    EXPECT_EQ(c1, 2);
    EXPECT_NE(o1.find("--reads"), std::string::npos) << o1;
    EXPECT_NE(o1.find("banana"), std::string::npos) << o1;

    auto [c2, o2] = run(std::string(QACC_PATH) + " " + v +
                        " --top mult --threads=many");
    EXPECT_EQ(c2, 2);
    EXPECT_NE(o2.find("--threads"), std::string::npos) << o2;

    std::string q = writeTemp("cli_badnum.qmasm", "X -1\n");
    for (const char *flags : {"--seed -3", "--sweeps 12junk",
                              "--top 99999999999999999999999"}) {
        auto [c3, o3] =
            run(std::string(QMA_PATH) + " " + q + " " + flags);
        EXPECT_EQ(c3, 2) << flags << ": " << o3;
        EXPECT_NE(o3.find("qma:"), std::string::npos)
            << flags << ": " << o3;
    }
}

} // namespace
