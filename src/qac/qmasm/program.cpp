#include "qac/qmasm/program.h"

#include <cmath>

#include "qac/util/logging.h"
#include "qac/util/strings.h"

namespace qac::qmasm {

namespace {

/** Shortest decimal that round-trips the coefficient. */
std::string
numToString(double v)
{
    for (int prec = 1; prec <= 17; ++prec) {
        std::string s = format("%.*g", prec, v);
        if (std::stod(s) == v)
            return s;
    }
    return format("%.17g", v);
}

} // namespace

std::string
Statement::toString() const
{
    switch (kind) {
      case Kind::Weight:
        return sym1 + " " + numToString(value);
      case Kind::Coupling:
        return sym1 + " " + sym2 + " " + numToString(value);
      case Kind::Chain:
        return sym1 + " = " + sym2;
      case Kind::Alias:
        return sym1 + " <-> " + sym2;
      case Kind::Pin:
        return sym1 + " := " + (pin_value ? "true" : "false");
      case Kind::Assert:
        return "assert " + text;
      case Kind::UseMacro:
        return "!use_macro " + sym1 + " " + sym2;
      case Kind::Comment:
        return "# " + text;
    }
    panic("Statement::toString: bad kind");
}

const Macro *
Program::findMacro(const std::string &name) const
{
    for (const auto &m : macros)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::string
Program::toString() const
{
    std::string out;
    for (const auto &m : macros) {
        out += "!begin_macro " + m.name + "\n";
        for (const auto &s : m.body)
            out += "  " + s.toString() + "\n";
        out += "!end_macro " + m.name + "\n";
    }
    for (const auto &s : statements)
        out += s.toString() + "\n";
    return out;
}

size_t
Program::lineCount() const
{
    return countLines(toString());
}

bool
isInternalSymbol(const std::string &sym)
{
    return sym.find('$') != std::string::npos;
}

} // namespace qac::qmasm
