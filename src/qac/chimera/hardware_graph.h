/**
 * @file
 * Generic annealer hardware graph: qubits (possibly inactive) and
 * couplers.  Concrete topologies (Chimera) build on this.
 */

#ifndef QAC_CHIMERA_HARDWARE_GRAPH_H
#define QAC_CHIMERA_HARDWARE_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <unordered_set>
#include <vector>

namespace qac::chimera {

class HardwareGraph
{
  public:
    HardwareGraph() = default;
    explicit HardwareGraph(size_t num_nodes);

    size_t numNodes() const { return adj_.size(); }
    size_t numActiveNodes() const;
    size_t numEdges() const { return num_edges_; }

    /** Add an undirected coupler. Parallel edges are ignored. */
    void addEdge(uint32_t u, uint32_t v);

    bool hasEdge(uint32_t u, uint32_t v) const;

    const std::vector<uint32_t> &neighbors(uint32_t u) const;

    /** Mark a qubit as dropped out (it keeps its id but is unusable). */
    void deactivate(uint32_t u);
    bool isActive(uint32_t u) const { return active_[u]; }

    std::vector<uint32_t> activeNodes() const;

    /** All edges (u < v) with both endpoints active. */
    std::vector<std::pair<uint32_t, uint32_t>> activeEdges() const;

    /** Complete graph K_n (the "logical" target: no embedding needed). */
    static HardwareGraph complete(size_t n);

  private:
    static uint64_t
    key(uint32_t u, uint32_t v)
    {
        if (u > v)
            std::swap(u, v);
        return (static_cast<uint64_t>(u) << 32) | v;
    }

    std::vector<std::vector<uint32_t>> adj_;
    std::vector<bool> active_;
    std::unordered_set<uint64_t> edge_set_;
    size_t num_edges_ = 0;
};

} // namespace qac::chimera

#endif // QAC_CHIMERA_HARDWARE_GRAPH_H
