/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in QAC (annealers, the minor embedder) draws
 * from an explicitly seeded Rng so experiments are reproducible.  The
 * engine is xoshiro256** — fast, high quality, and trivially seedable.
 */

#ifndef QAC_UTIL_RNG_H
#define QAC_UTIL_RNG_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qac {

/** Seedable xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Next raw 64-bit value.  Defined inline: the annealer sweeps draw
     * once per proposal, and an out-of-line call here is measurable
     * against the O(1) flip-delta lookup it accompanies.
     */
    uint64_t
    next()
    {
        const uint64_t result = rotl_(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl_(s_[3], 45);
        return result;
    }

    /** UniformRandomBitGenerator interface (usable with std::shuffle). */
    uint64_t operator()() { return next(); }
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1): a 53-bit mantissa from the top bits. */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Random ±1 spin. */
    int8_t
    spin()
    {
        return (next() & 1) ? int8_t{1} : int8_t{-1};
    }

    /** Uniform integer in [0, n) for n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli(p). */
    bool chance(double p);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

    /**
     * Raw xoshiro256** state words.  Exposed so lane-parallel kernels
     * can transpose many generators into structure-of-arrays form and
     * step them in lockstep while reproducing each stream bit for bit.
     */
    std::array<uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /**
     * Counter-based stream derivation: the @p index-th independent
     * stream of @p seed.  Unlike fork(), which advances shared
     * generator state and therefore depends on call order, streamAt is
     * a pure function of (seed, index) — parallel workers can draw
     * their streams in any order and still reproduce the sequential
     * run bit for bit.  Stream i of seed s never collides with stream
     * j != i, and distinct seeds yield unrelated stream families.
     */
    static Rng streamAt(uint64_t seed, uint64_t index);

  private:
    static uint64_t
    rotl_(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace qac

#endif // QAC_UTIL_RNG_H
