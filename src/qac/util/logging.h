/**
 * @file
 * Error reporting and status messages.
 *
 * Follows the gem5 convention: panic() flags an internal invariant
 * violation (a bug in QAC itself) and aborts; fatal() flags a user error
 * (bad input program, invalid option) and throws a recoverable exception
 * so library embedders can catch it.  inform()/warn() are advisory.
 */

#ifndef QAC_UTIL_LOGGING_H
#define QAC_UTIL_LOGGING_H

#include <cstdarg>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace qac {

/** Exception thrown by fatal(): a user-caused, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable internal error (a QAC bug) and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error by throwing FatalError.
 * Never returns normally.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Print an advisory warning to the log sink (suppressed at
 * verbosity 0).  Thread-safe: messages never interleave.
 */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Print an informational message to the log sink (suppressed at
 * verbosity 0 or via setInformEnabled(false)).  Thread-safe.
 */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally enable/disable inform() output. @return previous setting. */
bool setInformEnabled(bool enabled);

/**
 * Redirect warn()/inform() (and the panic() message) to @p stream so
 * tests can capture output.  Pass nullptr to restore the default
 * (stderr).  @return the previous stream (nullptr = stderr).
 */
std::ostream *setLogStream(std::ostream *stream);

/**
 * Global verbosity shared by qacc and qma:
 *   0 = quiet (errors only: warn()/inform() suppressed),
 *   1 = normal (default),
 *   2 = verbose (extra progress output for callers that check it).
 * @return the previous level.
 */
int setVerbosity(int level);
int verbosity();

} // namespace qac

#endif // QAC_UTIL_LOGGING_H
