/**
 * @file
 * Packed Metropolis sweep engines over ising::PackedState
 * (DESIGN.md §13).
 *
 * A packed sweep walks every variable once and, per variable, decides
 * all 64 replica lanes together: form the candidate mask
 * (delta_{i,l} < thresh — exactly the lanes whose scalar walker would
 * draw a uniform), draw one uniform per candidate lane from that
 * lane's own xoshiro256** stream, accept by metropolisAcceptU, and
 * apply the accepted flips in one batched pass over the CSR row.
 *
 * Three engines implement this contract: a portable scalar one, an
 * AVX2 one (QAC_ENABLE_AVX2 build option, util::avx2Supported()
 * hosts) and an AVX-512 one (QAC_ENABLE_AVX512, avx512Supported()).
 * They are required to be bit-identical — per lane, each must
 * reproduce the scalar LocalFieldState walker exactly — so engine
 * selection is a pure performance decision and never observable in
 * results.
 */

#ifndef QAC_ANNEAL_PACKED_SWEEP_H
#define QAC_ANNEAL_PACKED_SWEEP_H

#include <cstdint>

#include "qac/ising/packed.h"
#include "qac/util/rng.h"

namespace qac::anneal {

/**
 * 64 xoshiro256** generators in structure-of-arrays form: state word
 * w of lane l lives at s[w][l], so the vector engines can step four
 * (AVX2) or eight (AVX-512) lanes per vector op while any single lane
 * remains steppable alone.  Lanes advance only when they draw — lane
 * l consumes exactly the uniforms scalar read base+l consumes, in the
 * same order.
 */
struct LaneRngs
{
    uint64_t s[4][ising::PackedState::kLanes] = {};

    /** Install @p rng's current state as lane @p lane's stream. */
    void
    set(uint32_t lane, const Rng &rng)
    {
        const auto st = rng.state();
        for (int w = 0; w < 4; ++w)
            s[w][lane] = st[w];
    }

    /** Step lane @p lane — bitwise Rng::next on its state words. */
    uint64_t
    next(uint32_t lane)
    {
        const uint64_t s1 = s[1][lane];
        const uint64_t result =
            ((s1 * 5 << 7) | (s1 * 5 >> 57)) * 9;
        const uint64_t t = s1 << 17;
        s[2][lane] ^= s[0][lane];
        s[3][lane] ^= s1;
        s[1][lane] ^= s[2][lane];
        s[0][lane] ^= s[3][lane];
        s[2][lane] ^= t;
        s[3][lane] = (s[3][lane] << 45) | (s[3][lane] >> 19);
        return result;
    }

    /** Bitwise Rng::uniform for lane @p lane. */
    double
    uniform(uint32_t lane)
    {
        return static_cast<double>(next(lane) >> 11) * 0x1.0p-53;
    }
};

/**
 * One packed Metropolis sweep at inverse temperature @p beta with
 * draw threshold @p thresh (= kMaxExpArg / beta in the SA sampler).
 * Returns the OR of all candidate masks — bit l set means lane l
 * drew at least once this sweep (the freeze-out signal).
 */
using PackedSweepFn = uint64_t (*)(ising::PackedState &state,
                                   LaneRngs &rngs, double beta,
                                   double thresh);

/** Portable engine (always available). */
uint64_t packedSweepScalar(ising::PackedState &state, LaneRngs &rngs,
                           double beta, double thresh);

/** True when the AVX2 engine was compiled in (QAC_ENABLE_AVX2). */
bool packedSweepAvx2Compiled();

/**
 * AVX2 engine.  Only callable when packedSweepAvx2Compiled(); the
 * stub build panics.
 */
uint64_t packedSweepAvx2(ising::PackedState &state, LaneRngs &rngs,
                         double beta, double thresh);

/** True when the AVX-512 engine was compiled in (QAC_ENABLE_AVX512). */
bool packedSweepAvx512Compiled();

/**
 * AVX-512 engine (8 lanes per vector op, mask-register accept logic).
 * Only callable when packedSweepAvx512Compiled(); the stub build
 * panics.
 */
uint64_t packedSweepAvx512(ising::PackedState &state, LaneRngs &rngs,
                           double beta, double thresh);

/**
 * The engine for this host — the highest rung of the ladder that is
 * compiled in, CPU-supported, and not vetoed by environment override:
 * AVX-512, then AVX2, then scalar.  QAC_NO_AVX512 skips the top rung;
 * QAC_NO_AVX2 forces scalar.
 */
PackedSweepFn selectPackedSweep();

/** "avx512", "avx2" or "scalar" — what selectPackedSweep() resolved
 *  to. */
const char *packedSweepEngineName();

} // namespace qac::anneal

#endif // QAC_ANNEAL_PACKED_SWEEP_H
