/**
 * @file
 * Chain-aware simulated annealing for minor-embedded models.
 *
 * On an embedded Hamiltonian, moving one *logical* variable requires
 * flipping an entire ferromagnetic chain coherently — a barrier of
 * O(chain length x chain strength) that defeats single-spin-flip
 * Metropolis at low temperature (a quantum annealer crosses it by
 * tunneling; Section 2).  This sampler alternates full-chain composite
 * moves with single-qubit moves, both accepted on the *physical*
 * model's exact energy change, so chain-broken states remain reachable
 * and correctly weighted.
 */

#ifndef QAC_ANNEAL_CHAINFLIP_H
#define QAC_ANNEAL_CHAINFLIP_H

#include <vector>

#include "qac/anneal/sampler.h"
#include "qac/anneal/sampleset.h"
#include "qac/ising/model.h"

namespace qac::anneal {

class ChainFlipAnnealer : public Sampler
{
  public:
    struct Params : CommonParams
    {
        uint32_t sweeps = 256;
        double beta_initial = 0.0; ///< 0 = auto
        double beta_final = 0.0;   ///< 0 = auto
        bool greedy_polish = true;
    };

    /**
     * @param chains  groups of variable indices flipped together
     *                (typically EmbeddedModel::dense_chains)
     */
    ChainFlipAnnealer(Params params,
                      std::vector<std::vector<uint32_t>> chains)
        : params_(params), chains_(std::move(chains))
    {}

    SampleSet sample(const ising::IsingModel &model) const override;

  private:
    Params params_;
    std::vector<std::vector<uint32_t>> chains_;
};

} // namespace qac::anneal

#endif // QAC_ANNEAL_CHAINFLIP_H
