/**
 * @file
 * Clause -> Ising lowering via penalty gadgets (Bian et al., "Solving
 * SAT and MaxSAT with a Quantum Annealer"; see DESIGN.md section 14).
 *
 * Every clause becomes a penalty Hamiltonian that is 0 on satisfying
 * assignments and exactly the clause's penalty weight otherwise:
 *
 *   1-2 literals  direct product expansion, no ancillas
 *   3+ literals   Tseitin-style OR chain: an ancilla d = l1 | l2,
 *                 then d' = d | l3, ... with the last pair closed by
 *                 the 2-literal clause gadget
 *
 * OR-gadget ancillas are shared: two clauses whose (canonically
 * sorted) leading literal pairs agree reuse one ancilla, recursively
 * through the chain, so overlapping wide clauses pay for their common
 * prefix once.  The zero-penalty consistency of the OR gadget makes
 * sharing exact: each use just adds its own copy of the gadget
 * penalty, all of which vanish at the consistent ancilla value.
 *
 * Soft MaxSAT clauses scale their gadget by the written weight; hard
 * clauses by (sum of soft weights + 1), so one hard violation always
 * costs more than every soft clause together.
 */

#ifndef QAC_DIMACS_LOWER_H
#define QAC_DIMACS_LOWER_H

#include "qac/dimacs/dimacs.h"
#include "qac/qmasm/program.h"

namespace qac::dimacs {

/** Per-frontend compile options for DIMACS (CompileOptions variant). */
struct FrontendOptions
{
    /** Hard-clause penalty weight; 0 = auto (soft total + 1). */
    double hard_weight = 0.0;
    /** Reuse OR-gadget ancillas across identical sub-clauses. */
    bool share_ancillas = true;
};

/** Lowering result: symbolic program + decode metadata. */
struct Lowered
{
    qmasm::Program program;
    DecodeInfo decode;
};

/**
 * Lower a parsed instance to a QMASM program whose ground states are
 * the instance's (Max)SAT optima:
 *   penalty(assignment) = H(spins) + decode.energy_offset
 */
Lowered lower(const Instance &inst, const FrontendOptions &opts = {});

} // namespace qac::dimacs

#endif // QAC_DIMACS_LOWER_H
