/**
 * @file
 * A-priori variable fixing ("roof duality" elision; paper, Section 4.4:
 * "qmasm uses SAPI's implementation of roof duality [Hammer et al.
 * 1984] to elide qubits whose final value can be determined a priori").
 *
 * Implementation note: QAC implements the *strong local persistency*
 * subset of roof duality with cascading — a variable whose field
 * magnitude dominates its total coupling magnitude is fixed to the
 * field-preferred value, substituted into its neighbors, and the test
 * repeats to a fixpoint.  This is sound (every fixing is satisfied by
 * at least one global optimum, so the reduced model's minimum equals
 * the original's) and captures the pipeline's dominant use case:
 * propagating pinned program inputs/outputs through gate penalties.
 * The full Hammer-Hansen-Simeone roof dual would fix a superset; the
 * difference is measured (not assumed) in bench_static_properties.
 */

#ifndef QAC_EMBED_ROOF_DUALITY_H
#define QAC_EMBED_ROOF_DUALITY_H

#include <map>

#include "qac/ising/model.h"

namespace qac::embed {

struct FixResult
{
    /** Original variable -> fixed spin value. */
    std::map<uint32_t, ising::Spin> fixed;
    /** Model over the surviving variables. */
    ising::IsingModel reduced;
    /** Reduced variable index -> original variable index. */
    std::vector<uint32_t> reduced_to_orig;
    /** E_original(x) = E_reduced(x') + energy_offset on the optimum. */
    double energy_offset = 0.0;

    /** Lift a reduced-model assignment to the original index space. */
    ising::SpinVector lift(const ising::SpinVector &reduced_spins) const;

    size_t numFixed() const { return fixed.size(); }
};

/** Run the fixing cascade on @p model. */
FixResult fixVariables(const ising::IsingModel &model);

} // namespace qac::embed

#endif // QAC_EMBED_ROOF_DUALITY_H
