/**
 * @file
 * Tests for the compiled-artifact subsystem: the .qo object format
 * (exact canonical round-trips, structured corruption errors) and the
 * content-addressed embedding cache (warm hits skip the embedder,
 * corrupt entries degrade to recompute, LRU eviction, negative
 * entries, environment-variable configuration).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "qac/artifact/cache.h"
#include "qac/artifact/qo.h"
#include "qac/artifact/serial.h"
#include "qac/chimera/chimera.h"
#include "qac/core/compiler.h"
#include "qac/core/program.h"
#include "qac/stats/registry.h"
#include "qac/util/hash.h"

namespace qac::artifact {
namespace {

namespace fs = std::filesystem;

const char *kMult = R"(
module mult (A, B, C);
  input [1:0] A, B;
  output [3:0] C;
  assign C = A * B;
endmodule
)";

/** Fresh per-process scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) /
        (name + "." + std::to_string(::getpid()));
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

/** Compile the 2x2 multiplier; caching only when a dir is given. */
core::CompileResult
compileMult(bool chimera, const std::string &cache_dir = "")
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "mult";
    opts.cache.enabled = !cache_dir.empty();
    opts.cache.dir = cache_dir;
    if (chimera) {
        opts.target = core::Target::Chimera;
        opts.chimera_size = 8;
    }
    return core::compile(kMult, opts);
}

uint64_t
counterValue(const std::string &path)
{
    for (const auto &m : stats::Registry::global().snapshot())
        if (m.path == path && m.kind == stats::MetricKind::Counter)
            return m.count;
    return 0;
}

uint64_t
timerCalls(const std::string &path)
{
    for (const auto &m : stats::Registry::global().snapshot())
        if (m.path == path && m.kind == stats::MetricKind::Timer)
            return m.count;
    return 0;
}

// ---------------------------------------------------------------- serial

TEST(Serial, WriterReaderRoundTrip)
{
    Writer w;
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(-0.125);
    w.str("hello");
    w.str("");

    Reader r(w.buffer());
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_DOUBLE_EQ(r.f64(), -0.125);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, ReaderFailsPastEnd)
{
    Writer w;
    w.u32(5);
    Reader r(w.buffer());
    EXPECT_EQ(r.u32(), 5u);
    EXPECT_EQ(r.u64(), 0u); // past end: zero value, fail flag set
    EXPECT_FALSE(r.ok());
}

TEST(Serial, FrameRoundTripAndStructuredErrors)
{
    const char magic[4] = {'Q', 'A', 'C', 'O'};
    std::string file = frame(magic, "payload bytes");

    // Failures report a typed FrameError code (shared with the
    // service wire protocol's error frames), not just prose.
    std::string err;
    FrameError code = FrameError::ChecksumMismatch;
    auto payload = unframe(file, magic, &err, &code);
    ASSERT_TRUE(payload) << err;
    EXPECT_EQ(*payload, "payload bytes");
    EXPECT_EQ(code, FrameError::Ok);

    // Wrong magic.
    const char other[4] = {'N', 'O', 'P', 'E'};
    EXPECT_FALSE(unframe(file, other, &err, &code));
    EXPECT_EQ(code, FrameError::BadMagic);
    EXPECT_FALSE(err.empty());

    // Version mismatch: byte 4 is the low byte of the version u32.
    std::string bumped = file;
    bumped[4] = static_cast<char>(bumped[4] + 1);
    EXPECT_FALSE(unframe(bumped, magic, &err, &code));
    EXPECT_EQ(code, FrameError::VersionMismatch);

    // Truncation: payload shorter than claimed, then header cut off.
    EXPECT_FALSE(
        unframe(std::string_view(file).substr(0, file.size() - 3),
                magic, &err, &code));
    EXPECT_EQ(code, FrameError::TruncatedPayload);
    EXPECT_FALSE(unframe("QA", magic, &err, &code));
    EXPECT_EQ(code, FrameError::TruncatedHeader);

    // Payload bit flip -> checksum mismatch.
    std::string flipped = file;
    flipped[flipped.size() - 1] ^= 0x40;
    EXPECT_FALSE(unframe(flipped, magic, &err, &code));
    EXPECT_EQ(code, FrameError::ChecksumMismatch);

    // Every code renders a stable identifier for logs/error frames.
    for (FrameError c :
         {FrameError::Ok, FrameError::TruncatedHeader,
          FrameError::BadMagic, FrameError::VersionMismatch,
          FrameError::TruncatedPayload, FrameError::ChecksumMismatch})
        EXPECT_STRNE(frameErrorName(c), "unknown");
}

// ---------------------------------------------------------------- .qo

TEST(Qo, LogicalRoundTripIsByteIdentical)
{
    auto compiled = compileMult(false);
    std::string bytes = serializeQo(compiled);

    std::string err;
    auto reloaded = deserializeQo(bytes, &err);
    ASSERT_TRUE(reloaded) << err;
    EXPECT_EQ(serializeQo(*reloaded), bytes);

    EXPECT_EQ(reloaded->assembled.model, compiled.assembled.model);
    EXPECT_EQ(reloaded->assembled.sym_to_var,
              compiled.assembled.sym_to_var);
    EXPECT_EQ(reloaded->edif_text, compiled.edif_text);
    EXPECT_EQ(reloaded->stats.gates, compiled.stats.gates);
    EXPECT_FALSE(reloaded->embedding.has_value());
}

TEST(Qo, ChimeraRoundTripIsByteIdentical)
{
    auto compiled = compileMult(true);
    std::string bytes = serializeQo(compiled);

    std::string err;
    auto reloaded = deserializeQo(bytes, &err);
    ASSERT_TRUE(reloaded) << err;
    EXPECT_EQ(serializeQo(*reloaded), bytes);

    ASSERT_TRUE(reloaded->embedding.has_value());
    ASSERT_TRUE(reloaded->embedded.has_value());
    ASSERT_TRUE(reloaded->hardware.has_value());
    EXPECT_EQ(reloaded->embedding->chains, compiled.embedding->chains);
    EXPECT_EQ(reloaded->embedded->physical,
              compiled.embedded->physical);
    EXPECT_EQ(reloaded->stats.physical_qubits,
              compiled.stats.physical_qubits);
    EXPECT_EQ(reloaded->stats.max_chain_length,
              compiled.stats.max_chain_length);
}

/**
 * Round-trip @p compiled through the .qo form and require samples
 * from the reloaded executable to be bitwise identical to the
 * original's, at several thread counts.
 */
void
expectReloadedRunsIdentical(core::CompileResult compiled,
                            bool use_physical)
{
    core::CompileResult copy = compiled;
    auto reloaded = deserializeQo(serializeQo(compiled));
    ASSERT_TRUE(reloaded);

    core::Executable direct(std::move(copy));
    core::Executable fromqo(std::move(*reloaded));
    direct.pinDirective("C[3:0] := 0110");
    fromqo.pinDirective("C[3:0] := 0110");

    for (uint32_t threads : {1u, 8u}) {
        core::Executable::RunOptions ro;
        ro.solver = "sa";
        ro.common.num_reads = 64;
        ro.sweeps = 128;
        ro.common.seed = 5;
        ro.common.threads = threads;
        ro.use_physical = use_physical;
        if (use_physical)
            ro.reduce = false;
        auto ra = direct.run(ro);
        auto rb = fromqo.run(ro);
        ASSERT_EQ(ra.candidates.size(), rb.candidates.size())
            << "threads=" << threads;
        EXPECT_EQ(ra.total_reads, rb.total_reads);
        for (size_t i = 0; i < ra.candidates.size(); ++i) {
            const auto &a = ra.candidates[i];
            const auto &b = rb.candidates[i];
            EXPECT_EQ(a.values, b.values) << "threads=" << threads;
            EXPECT_EQ(a.energy, b.energy) << "threads=" << threads;
            EXPECT_EQ(a.occurrences, b.occurrences);
            EXPECT_EQ(a.valid, b.valid);
        }
    }
}

TEST(Qo, ReloadedExecutableSamplesBitwiseIdentically)
{
    expectReloadedRunsIdentical(compileMult(false), false);
}

// The chimera-target run paths fold floats over model views that are
// rebuilt from the .qo (adjacency masses for pins, roof-duality
// fixing, candidate energies); any iteration-order dependence shows
// up here as a tie-break divergence that the logical test misses.
TEST(Qo, ChimeraReloadedRunsIdenticallyReduced)
{
    expectReloadedRunsIdentical(compileMult(true), false);
}

TEST(Qo, ChimeraReloadedRunsIdenticallyPhysical)
{
    expectReloadedRunsIdentical(compileMult(true), true);
}

TEST(Qo, FileErrorsAreStructuredAndNonFatal)
{
    std::string dir = scratchDir("qo_errors");
    std::string path = dir + "/m.qo";
    auto compiled = compileMult(false);
    std::string err;
    ASSERT_TRUE(writeQoFile(path, compiled, &err)) << err;
    ASSERT_TRUE(readQoFile(path, &err)) << err;

    // Missing file.
    EXPECT_FALSE(readQoFile(dir + "/nope.qo", &err));
    EXPECT_FALSE(err.empty());

    std::string bytes = serializeQo(compiled);

    auto rewrite = [&](const std::string &data) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << data;
    };

    // Truncated file.
    rewrite(bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(readQoFile(path, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;

    // Single bit flip deep in the payload.
    std::string flipped = bytes;
    flipped[flipped.size() - 7] ^= 0x01;
    rewrite(flipped);
    EXPECT_FALSE(readQoFile(path, &err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;

    // Future format version.
    std::string bumped = bytes;
    bumped[4] = static_cast<char>(bumped[4] + 1);
    rewrite(bumped);
    EXPECT_FALSE(readQoFile(path, &err));
    EXPECT_NE(err.find("version mismatch"), std::string::npos) << err;
}

// ---------------------------------------------------------------- cache

TEST(Cache, DefaultDirHonorsEnvOverride)
{
    std::string dir = scratchDir("envcache");
    ASSERT_EQ(::setenv("QAC_CACHE_DIR", dir.c_str(), 1), 0);
    EXPECT_EQ(defaultCacheDir(), dir);
    ASSERT_EQ(::unsetenv("QAC_CACHE_DIR"), 0);
    EXPECT_NE(defaultCacheDir(), dir);
}

TEST(Cache, StoreLoadAndLruEviction)
{
    CacheOptions opts;
    opts.dir = scratchDir("evict");
    opts.max_bytes = 150;
    Cache cache(opts);
    ASSERT_TRUE(cache.enabled());

    EXPECT_FALSE(cache.load("absent"));
    std::string blob(100, 'x');
    EXPECT_TRUE(cache.store("a", blob));
    auto got = cache.load("a");
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, blob);

    // Two more 100-byte entries blow the 150-byte cap; eviction must
    // bring the directory back under it.
    EXPECT_TRUE(cache.store("b", blob));
    EXPECT_TRUE(cache.store("c", blob));
    uint64_t total = 0;
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(opts.dir)) {
        total += e.file_size();
        ++files;
    }
    EXPECT_LE(total, opts.max_bytes);
    EXPECT_LT(files, 3u);
}

TEST(Cache, UnusableDirDisablesGracefully)
{
    CacheOptions opts;
    // A path under a regular file can never be created.
    std::string dir = scratchDir("blocked");
    std::ofstream(dir + "/file") << "x";
    opts.dir = dir + "/file/sub";
    Cache cache(opts);
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.load("a"));
    EXPECT_FALSE(cache.store("a", "bytes"));
}

TEST(Cache, EmbeddingRoundTripAndNegativeEntries)
{
    CacheOptions opts;
    opts.dir = scratchDir("embcache");
    Cache cache(opts);
    ASSERT_TRUE(cache.enabled());

    // Two logical variables on a single Chimera cell: chains {0},{4}
    // joined by the real hardware edge 0-4.
    auto hw = chimera::chimeraGraph(1);
    std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}};
    embed::Embedding emb;
    emb.chains = {{0}, {4}};

    embed::EmbedParams params;
    uint64_t key = embeddingCacheKey(ising::IsingModel(2), hw, params);

    EXPECT_FALSE(lookupEmbedding(cache, key, edges, hw).hit);

    storeEmbedding(cache, key, emb);
    auto probe = lookupEmbedding(cache, key, edges, hw);
    ASSERT_TRUE(probe.hit);
    ASSERT_TRUE(probe.embeddable);
    ASSERT_TRUE(probe.embedding);
    EXPECT_EQ(probe.embedding->chains, emb.chains);

    // Negative entry: a different key remembered as unembeddable.
    storeEmbedding(cache, key + 1, std::nullopt);
    auto neg = lookupEmbedding(cache, key + 1, edges, hw);
    EXPECT_TRUE(neg.hit);
    EXPECT_FALSE(neg.embeddable);
    EXPECT_FALSE(neg.embedding);
}

TEST(Cache, CorruptOrMismatchedEntriesBehaveAsMiss)
{
    CacheOptions opts;
    opts.dir = scratchDir("corrupt");
    Cache cache(opts);
    ASSERT_TRUE(cache.enabled());

    auto hw = chimera::chimeraGraph(1);
    std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}};
    embed::EmbedParams params;
    uint64_t key = embeddingCacheKey(ising::IsingModel(2), hw, params);

    // Garbage bytes under the right name: unframe rejects them.
    ASSERT_TRUE(cache.store(embeddingEntryName(key), "not a frame"));
    EXPECT_FALSE(lookupEmbedding(cache, key, edges, hw).hit);

    // A well-framed entry whose chains do not solve *this* problem
    // (qubits 0 and 1 share no hardware edge): verification rejects it.
    embed::Embedding wrong;
    wrong.chains = {{0}, {1}};
    storeEmbedding(cache, key, wrong);
    EXPECT_FALSE(lookupEmbedding(cache, key, edges, hw).hit);
}

TEST(Cache, KeyIsSensitiveToEveryInput)
{
    auto hw = chimera::chimeraGraph(2);
    embed::EmbedParams params;
    ising::IsingModel model(3);
    model.addQuadratic(0, 1, -1.0);

    uint64_t base = embeddingCacheKey(model, hw, params);
    EXPECT_EQ(embeddingCacheKey(model, hw, params), base);

    ising::IsingModel other = model;
    other.addLinear(2, 0.5);
    EXPECT_NE(embeddingCacheKey(other, hw, params), base);

    embed::EmbedParams seeded = params;
    seeded.seed = 2;
    EXPECT_NE(embeddingCacheKey(model, hw, seeded), base);

    auto smaller = chimera::chimeraGraph(1);
    EXPECT_NE(embeddingCacheKey(model, smaller, params), base);

    // Thread count is execution policy, not content: key unchanged.
    embed::EmbedParams threaded = params;
    threaded.threads = 7;
    EXPECT_EQ(embeddingCacheKey(model, hw, threaded), base);
}

// ------------------------------------------------- compiler integration

TEST(CompilerCache, WarmCompileSkipsEmbedderAndMatchesCold)
{
    auto &reg = stats::Registry::global();
    bool prev = reg.setEnabled(true);
    std::string dir = scratchDir("warm");

    reg.reset();
    auto cold = compileMult(true, dir);
    EXPECT_GE(counterValue("qac.cache.miss"), 1u);
    EXPECT_EQ(counterValue("qac.cache.hit"), 0u);
    EXPECT_GE(timerCalls("compile.embed"), 1u);

    reg.reset();
    auto warm = compileMult(true, dir);
    EXPECT_GE(counterValue("qac.cache.hit"), 1u);
    EXPECT_EQ(counterValue("qac.cache.miss"), 0u);
    // The acceptance criterion: a warm compile never enters the
    // embedder, so its timer records zero calls.
    EXPECT_EQ(timerCalls("compile.embed"), 0u);

    ASSERT_TRUE(cold.embedding && warm.embedding);
    EXPECT_EQ(warm.embedding->chains, cold.embedding->chains);
    EXPECT_EQ(warm.embedded->physical, cold.embedded->physical);
    EXPECT_EQ(serializeQo(warm), serializeQo(cold));

    reg.reset();
    reg.setEnabled(prev);
}

TEST(CompilerCache, CorruptEntryFallsBackToRecompute)
{
    std::string dir = scratchDir("fallback");
    auto cold = compileMult(true, dir);

    // Smash every cache entry; the next compile must still succeed
    // (and rewrite good entries).
    for (const auto &e : fs::directory_iterator(dir)) {
        std::ofstream out(e.path(),
                          std::ios::binary | std::ios::trunc);
        out << "garbage";
    }
    auto recomputed = compileMult(true, dir);
    ASSERT_TRUE(recomputed.embedding);
    EXPECT_EQ(recomputed.embedding->chains, cold.embedding->chains);

    auto warm = compileMult(true, dir);
    EXPECT_EQ(warm.embedding->chains, cold.embedding->chains);
}

} // namespace
} // namespace qac::artifact
