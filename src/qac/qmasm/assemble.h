/**
 * @file
 * QMASM assembly: symbolic program -> logical Ising model.
 *
 * Implements the qmasm lowering semantics the paper relies on:
 *  - chains "A = B" either merge the two variables into one (Section
 *    4.4: "Explicit A = B constraints in the code result in merging")
 *    or become a ferromagnetic J coupling whose default magnitude is
 *    "twice the largest-in-magnitude J value that appears literally in
 *    the code" (Section 4.3.5);
 *  - pins "A := v" add a strong bias toward v (H_VCC/H_GND of Section
 *    4.3.4; exact elision is left to the roof-duality pass);
 *  - results are reported "in terms of the program-specified symbolic
 *    names rather than as physical qubit numbers", with '$'-symbols
 *    hidden.
 */

#ifndef QAC_QMASM_ASSEMBLE_H
#define QAC_QMASM_ASSEMBLE_H

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "qac/ising/model.h"
#include "qac/qmasm/program.h"

namespace qac::qmasm {

struct AssembleOptions
{
    /** Merge chained variables into one (qmasm -O behaviour). */
    bool merge_chains = true;
    /** Chain coupling magnitude when not merging; 0 = auto (2x max |J|). */
    double chain_strength = 0.0;
    /** Pin bias magnitude; 0 = auto (same as chain strength). */
    double pin_strength = 0.0;
};

/** The assembled logical model plus its symbol table. */
class Assembled
{
  public:
    ising::IsingModel model;

    /** Canonical (preferably user-visible) name for each variable. */
    std::vector<std::string> var_names;
    /** Every program symbol -> variable index (post chain merging). */
    std::unordered_map<std::string, uint32_t> sym_to_var;
    /** Pins applied, by symbol. */
    std::vector<std::pair<std::string, bool>> pins;
    /** Assertion expressions (expanded symbol names). */
    std::vector<std::string> asserts;

    double chain_strength_used = 0.0;
    double pin_strength_used = 0.0;
    /** Constant energy from couplings collapsed by merging. */
    double energy_offset = 0.0;

    /** Variable index for a symbol. Fatal if unknown. */
    uint32_t var(const std::string &sym) const;
    bool hasSymbol(const std::string &sym) const;

    /** Value of a symbol under a model-sized spin assignment. */
    bool symbolValue(const ising::SpinVector &spins,
                     const std::string &sym) const;

    /** All non-internal symbols with their values (the qmasm report). */
    std::map<std::string, bool>
    visibleValues(const ising::SpinVector &spins) const;

    /**
     * Evaluate every assert under @p spins.
     * @param failed if non-null, receives the first failing expression
     * @return true when all asserts hold
     */
    bool checkAsserts(const ising::SpinVector &spins,
                      std::string *failed = nullptr) const;
};

/** Assemble a program (expanding macros first). */
Assembled assemble(const Program &prog, const AssembleOptions &opts = {});

/**
 * Evaluate one assert expression over symbol values.
 * Grammar: equality ('='/'!=') over '|' over '^' over '&' over
 * unary '~'/'!' over parens/symbols/true/false/0/1.
 */
bool evalAssertExpr(const std::string &expr,
                    const std::map<std::string, bool> &values);

} // namespace qac::qmasm

#endif // QAC_QMASM_ASSEMBLE_H
