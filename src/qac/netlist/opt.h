/**
 * @file
 * Netlist optimization passes.
 *
 * Plays the role ABC plays in the paper's flow ("with ABC providing
 * additional code optimizations", Section 4.2).  Every gate saved is a
 * qubit (or several) saved, and "with current quantum annealers
 * providing on the order of 2000 qubits, wasting qubits would be
 * unacceptable" (Section 4.1).
 */

#ifndef QAC_NETLIST_OPT_H
#define QAC_NETLIST_OPT_H

#include <cstddef>

#include "qac/netlist/netlist.h"

namespace qac::netlist {

/** Counters reported by optimize(). */
struct OptStats
{
    size_t gates_before = 0;
    size_t gates_after = 0;
    size_t folded = 0;   ///< gates removed/simplified by constant folding
    size_t merged = 0;   ///< gates merged by structural hashing
    size_t dead = 0;     ///< gates removed as unreachable
    size_t rounds = 0;
};

/**
 * Propagate constants and algebraic identities (AND(x,1) = x, XOR(x,x)
 * = 0, double inversion, constant MUX selects, ...).
 * @return number of gates eliminated or rewritten.
 */
size_t constantFold(Netlist &nl);

/**
 * Merge structurally identical gates (same type and inputs after
 * commutative normalization).  @return number of gates merged away.
 */
size_t structuralHash(Netlist &nl);

/** Remove gates whose outputs cannot reach any output port. */
size_t removeDeadGates(Netlist &nl);

/** Run the passes to a fixpoint. */
OptStats optimize(Netlist &nl);

} // namespace qac::netlist

#endif // QAC_NETLIST_OPT_H
