#include "qac/ising/solution.h"

namespace qac::ising {

SpinVector
indexToSpins(uint64_t idx, size_t n)
{
    SpinVector spins(n, -1);
    for (size_t b = 0; b < n; ++b)
        if ((idx >> b) & 1)
            spins[b] = 1;
    return spins;
}

uint64_t
spinsToIndex(const SpinVector &spins)
{
    uint64_t idx = 0;
    for (size_t b = 0; b < spins.size(); ++b)
        if (spins[b] > 0)
            idx |= (uint64_t{1} << b);
    return idx;
}

std::string
toString(const SpinVector &spins)
{
    std::string s;
    s.reserve(spins.size());
    for (Spin sp : spins)
        s += (sp > 0) ? '+' : '-';
    return s;
}

} // namespace qac::ising
