/**
 * @file
 * Binary substrate of the artifact subsystem: an endian-fixed
 * (little-endian, fixed-width) byte writer/reader pair plus the
 * checksummed frame every artifact file uses:
 *
 *   magic (4 bytes) | format version (u32) | payload size (u64) |
 *   payload FNV-1a digest (u64) | payload bytes
 *
 * unframe() distinguishes the three ways a file can be unusable —
 * wrong magic, version mismatch, truncation/corruption — so callers
 * can report a structured error and fall back to recompute instead of
 * failing the compile.
 */

#ifndef QAC_ARTIFACT_SERIAL_H
#define QAC_ARTIFACT_SERIAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qac::artifact {

/**
 * Version of every artifact byte format (.qo objects and cache
 * entries).  Bump on any layout *or semantic* change — it is part of
 * the cache key, so stale entries from older toolchains never load.
 *
 * v2 (PR 9): .qo records the producing frontend key and optional
 * DIMACS decode metadata (clause list + variable<->spin map) so
 * executors can print model lines without the original source.
 */
constexpr uint32_t kArtifactFormatVersion = 2;

/** Append-only little-endian byte sink. */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v); ///< IEEE-754 bit pattern, little-endian

    /** u64 length prefix + raw contents. */
    void str(std::string_view s);

    void raw(const void *data, size_t size);

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian reader.  Reads past the end set the
 * fail flag and return zero values; check ok() once after parsing.
 */
class Reader
{
  public:
    explicit Reader(std::string_view data) : data_(data) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();

    bool ok() const { return ok_; }
    size_t remaining() const { return data_.size() - pos_; }

  private:
    bool take(void *out, size_t n);

    std::string_view data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * The ways a frame can fail to validate.  The numeric values are wire
 * ABI: the service protocol's error frames (service/wire.h) carry
 * exactly these codes for frame-level failures, so a daemon and an
 * artifact loader report the same condition with the same number.
 * Append only; never renumber.
 */
enum class FrameError : uint32_t {
    Ok = 0,
    TruncatedHeader = 1,   ///< file shorter than the fixed header
    BadMagic = 2,          ///< not this kind of artifact at all
    VersionMismatch = 3,   ///< produced by a different toolchain
    TruncatedPayload = 4,  ///< payload shorter than the header claims
    ChecksumMismatch = 5,  ///< payload bytes corrupt
};

/** Stable lowercase identifier ("ok", "bad_magic", ...). */
const char *frameErrorName(FrameError code);

/** Wrap @p payload in the checksummed artifact frame. */
std::string frame(const char magic[4], std::string_view payload);

/**
 * Validate an artifact frame and return a view of its payload.
 * On failure returns nullopt and reports the reason two ways: a
 * structured one-line message in @p error and the FrameError code in
 * @p code (both optional).
 */
std::optional<std::string_view>
unframe(std::string_view file, const char magic[4],
        std::string *error = nullptr, FrameError *code = nullptr);

} // namespace qac::artifact

#endif // QAC_ARTIFACT_SERIAL_H
