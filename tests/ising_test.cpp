/**
 * @file
 * Unit + property tests for the Ising/QUBO models (Equation 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "qac/ising/model.h"
#include "qac/ising/qubo.h"
#include "qac/util/rng.h"

namespace qac::ising {
namespace {

IsingModel
randomModel(Rng &rng, size_t n, double edge_prob = 0.5)
{
    IsingModel m(n);
    for (uint32_t i = 0; i < n; ++i)
        if (rng.chance(0.8))
            m.addLinear(i, rng.uniform() * 4 - 2);
    for (uint32_t i = 0; i < n; ++i)
        for (uint32_t j = i + 1; j < n; ++j)
            if (rng.chance(edge_prob))
                m.addQuadratic(i, j, rng.uniform() * 4 - 2);
    return m;
}

TEST(IsingModel, EnergyByHand)
{
    // H = 0.5 s0 - s1 + 2 s0 s1
    IsingModel m(2);
    m.addLinear(0, 0.5);
    m.addLinear(1, -1.0);
    m.addQuadratic(0, 1, 2.0);
    EXPECT_DOUBLE_EQ(m.energy({-1, -1}), -0.5 + 1 + 2);
    EXPECT_DOUBLE_EQ(m.energy({-1, 1}), -0.5 - 1 - 2);
    EXPECT_DOUBLE_EQ(m.energy({1, -1}), 0.5 + 1 - 2);
    EXPECT_DOUBLE_EQ(m.energy({1, 1}), 0.5 - 1 + 2);
}

TEST(IsingModel, AdditiveCoefficients)
{
    IsingModel m(2);
    m.addQuadratic(0, 1, 1.5);
    m.addQuadratic(1, 0, -0.5); // symmetric key
    EXPECT_DOUBLE_EQ(m.quadratic(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(m.quadratic(1, 0), 1.0);
}

TEST(IsingModel, NumTermsCountsNonzero)
{
    IsingModel m(3);
    m.addLinear(0, 1.0);
    m.addLinear(1, -1.0);
    m.addLinear(1, 1.0); // cancels to zero
    m.addQuadratic(0, 2, 0.25);
    EXPECT_EQ(m.numTerms(), 2u);
}

TEST(IsingModel, ResizeOnDemand)
{
    IsingModel m;
    m.addQuadratic(2, 5, 1.0);
    EXPECT_EQ(m.numVars(), 6u);
    EXPECT_DOUBLE_EQ(m.linear(4), 0.0);
}

TEST(IsingModel, ScaleToRangeRespectsAsymmetry)
{
    // The D-Wave range is h in [-2,2] but J in [-2,1] (Section 2).
    IsingModel m(2);
    m.addLinear(0, 1.0);
    m.addQuadratic(0, 1, 4.0); // exceeds j_max = 1
    double f = m.scaleToRange(CoefficientRange{});
    EXPECT_NEAR(f, 0.25, 1e-12);
    EXPECT_NEAR(m.quadratic(0, 1), 1.0, 1e-12);
    EXPECT_NEAR(m.linear(0), 0.25, 1e-12);
    EXPECT_TRUE(m.withinRange(CoefficientRange{}));
}

TEST(IsingModel, ScalePreservesArgmin)
{
    Rng rng(11);
    IsingModel m = randomModel(rng, 6);
    IsingModel scaled = m;
    scaled.scaleToRange(CoefficientRange{});
    // argmin invariance: ordering of energies must be preserved.
    double best_m = 1e300, best_s = 1e300;
    uint64_t arg_m = 0, arg_s = 0;
    for (uint64_t k = 0; k < 64; ++k) {
        auto spins = indexToSpins(k, 6);
        if (m.energy(spins) < best_m) {
            best_m = m.energy(spins);
            arg_m = k;
        }
        if (scaled.energy(spins) < best_s) {
            best_s = scaled.energy(spins);
            arg_s = k;
        }
    }
    EXPECT_EQ(arg_m, arg_s);
}

TEST(IsingModel, FlipDeltaMatchesRecompute)
{
    Rng rng(12);
    for (int trial = 0; trial < 20; ++trial) {
        IsingModel m = randomModel(rng, 8);
        SpinVector spins(8);
        for (auto &s : spins)
            s = rng.spin();
        for (uint32_t i = 0; i < 8; ++i) {
            double before = m.energy(spins);
            double delta = m.flipDelta(spins, i);
            spins[i] = static_cast<Spin>(-spins[i]);
            EXPECT_NEAR(m.energy(spins), before + delta, 1e-9);
            spins[i] = static_cast<Spin>(-spins[i]);
        }
    }
}

TEST(IsingModel, EqualityOperator)
{
    IsingModel a(2), b(2);
    a.addQuadratic(0, 1, 1.0);
    b.addQuadratic(1, 0, 1.0);
    EXPECT_TRUE(a == b);
    b.addLinear(0, 0.5);
    EXPECT_FALSE(a == b);
}

TEST(Solution, IndexRoundTrip)
{
    for (uint64_t k = 0; k < 32; ++k)
        EXPECT_EQ(spinsToIndex(indexToSpins(k, 5)), k);
}

TEST(Solution, SpinBoolMapping)
{
    EXPECT_TRUE(spinToBool(1));
    EXPECT_FALSE(spinToBool(-1));
    EXPECT_EQ(boolToSpin(true), 1);
    EXPECT_EQ(boolToSpin(false), -1);
}

// ------------------------------------------------------------------ QUBO

TEST(Qubo, EnergyByHand)
{
    QuboModel q(2);
    q.addOffset(1.0);
    q.addLinear(0, 2.0);
    q.addQuadratic(0, 1, -3.0);
    EXPECT_DOUBLE_EQ(q.energy({0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(q.energy({1, 0}), 3.0);
    EXPECT_DOUBLE_EQ(q.energy({1, 1}), 0.0);
}

TEST(Qubo, ToIsingEquivalence)
{
    Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        QuboModel q(5);
        for (uint32_t i = 0; i < 5; ++i)
            q.addLinear(i, rng.uniform() * 6 - 3);
        for (uint32_t i = 0; i < 5; ++i)
            for (uint32_t j = i + 1; j < 5; ++j)
                if (rng.chance(0.6))
                    q.addQuadratic(i, j, rng.uniform() * 6 - 3);
        double offset = 0;
        IsingModel m = q.toIsing(&offset);
        for (uint64_t k = 0; k < 32; ++k) {
            std::vector<uint8_t> bits(5);
            SpinVector spins(5);
            for (size_t b = 0; b < 5; ++b) {
                bits[b] = (k >> b) & 1;
                spins[b] = bits[b] ? 1 : -1;
            }
            EXPECT_NEAR(q.energy(bits), m.energy(spins) + offset, 1e-9);
        }
    }
}

TEST(Qubo, FromIsingInverse)
{
    Rng rng(14);
    IsingModel m = randomModel(rng, 6);
    QuboModel q = QuboModel::fromIsing(m);
    for (uint64_t k = 0; k < 64; ++k) {
        SpinVector spins = indexToSpins(k, 6);
        std::vector<uint8_t> bits(6);
        for (size_t b = 0; b < 6; ++b)
            bits[b] = spins[b] > 0;
        EXPECT_NEAR(q.energy(bits), m.energy(spins), 1e-9);
    }
}

} // namespace
} // namespace qac::ising
