/**
 * @file
 * The determinism contract of the parallel execution layer: for a
 * fixed seed every sampler, the embedder, and the exact enumerator
 * must produce bitwise-identical results regardless of thread count.
 * Also unit-tests the exec primitives (parallelFor, firstSuccess,
 * CancelToken, TaskGroup), counter-based RNG streams, and the
 * SampleSet merge/finalize algebra the reduction relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "qac/anneal/descent.h"
#include "qac/anneal/exact.h"
#include "qac/anneal/sampler.h"
#include "qac/anneal/sampleset.h"
#include "qac/chimera/chimera.h"
#include "qac/embed/minorminer.h"
#include "qac/exec/exec.h"
#include "qac/ising/model.h"
#include "qac/util/rng.h"

namespace {

using namespace qac;

// ---------------------------------------------------------------- exec

TEST(Exec, ResolveThreads)
{
    EXPECT_GE(exec::resolveThreads(0), 1u);
    EXPECT_EQ(exec::resolveThreads(1), 1u);
    EXPECT_EQ(exec::resolveThreads(8), 8u);
}

TEST(Exec, ParallelForCoversEveryIndexOnce)
{
    for (uint32_t threads : {1u, 2u, 8u}) {
        std::vector<std::atomic<int>> hits(1000);
        exec::parallelFor(hits.size(), threads,
                          [&](size_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Exec, ParallelForZeroAndOne)
{
    int runs = 0;
    exec::parallelFor(0, 8, [&](size_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    exec::parallelFor(1, 8, [&](size_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST(Exec, ParallelForNestedDegradesInline)
{
    std::vector<std::atomic<int>> hits(64);
    exec::parallelFor(8, 8, [&](size_t outer) {
        exec::parallelFor(8, 8, [&](size_t inner) {
            hits[outer * 8 + inner].fetch_add(1);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Exec, ParallelForRethrowsLowestIndex)
{
    for (uint32_t threads : {1u, 8u}) {
        std::atomic<int> ran{0};
        try {
            exec::parallelFor(100, threads, [&](size_t i) {
                ran.fetch_add(1);
                if (i == 13 || i == 77)
                    throw std::runtime_error(
                        "fault at " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "fault at 13");
        }
        // Every index still ran (sequential all-indices semantics).
        EXPECT_EQ(ran.load(), 100);
    }
}

TEST(Exec, CancelTokenKeepsMinimum)
{
    exec::CancelToken token;
    EXPECT_EQ(token.winner(), exec::CancelToken::kNone);
    EXPECT_FALSE(token.cancelled(0));
    token.declareSuccess(7);
    token.declareSuccess(3);
    token.declareSuccess(9);
    EXPECT_EQ(token.winner(), 3u);
    EXPECT_FALSE(token.cancelled(3));
    EXPECT_FALSE(token.cancelled(2));
    EXPECT_TRUE(token.cancelled(4));
}

TEST(Exec, FirstSuccessReturnsLowestWinner)
{
    // Indices 5, 9, 14 succeed; the winner must always be 5.
    for (uint32_t threads : {1u, 2u, 8u}) {
        size_t w = exec::firstSuccess(
            20, threads, [](size_t i, const exec::CancelToken &) {
                return i == 5 || i == 9 || i == 14;
            });
        EXPECT_EQ(w, 5u) << "threads=" << threads;
    }
}

TEST(Exec, FirstSuccessAllFail)
{
    for (uint32_t threads : {1u, 8u}) {
        size_t w = exec::firstSuccess(
            16, threads,
            [](size_t, const exec::CancelToken &) { return false; });
        EXPECT_EQ(w, exec::CancelToken::kNone);
    }
}

TEST(Exec, TaskGroupJoinsAndRethrowsEarliest)
{
    exec::TaskGroup group;
    std::atomic<int> done{0};
    for (int t = 0; t < 16; ++t)
        group.spawn([&] { done.fetch_add(1); });
    group.wait();
    EXPECT_EQ(done.load(), 16);

    exec::TaskGroup failing;
    failing.spawn([] { throw std::runtime_error("first"); });
    failing.spawn([] { throw std::runtime_error("second"); });
    try {
        failing.wait();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

// ----------------------------------------------------------------- rng

TEST(RngStream, PureFunctionOfSeedAndIndex)
{
    Rng a = Rng::streamAt(42, 7);
    Rng b = Rng::streamAt(42, 7);
    for (int k = 0; k < 64; ++k)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, DistinctIndicesAndSeedsDiverge)
{
    Rng a = Rng::streamAt(42, 0);
    Rng b = Rng::streamAt(42, 1);
    Rng c = Rng::streamAt(43, 0);
    // First draws almost surely differ between streams.
    EXPECT_NE(a.next(), b.next());
    Rng a2 = Rng::streamAt(42, 0);
    EXPECT_NE(a2.next(), c.next());
}

TEST(RngStream, OrderIndependent)
{
    // Drawing stream 5 before stream 2 must not change either —
    // unlike fork(), which advances shared state.
    Rng five_first = Rng::streamAt(9, 5);
    uint64_t v5 = five_first.next();
    Rng two = Rng::streamAt(9, 2);
    uint64_t v2 = two.next();

    Rng two_first = Rng::streamAt(9, 2);
    EXPECT_EQ(two_first.next(), v2);
    Rng five = Rng::streamAt(9, 5);
    EXPECT_EQ(five.next(), v5);
}

// ----------------------------------------------------- sampleset algebra

anneal::SampleSet
setOf(std::initializer_list<std::pair<std::vector<int>, double>> items)
{
    anneal::SampleSet s;
    for (const auto &[raw, e] : items) {
        ising::SpinVector spins(raw.size());
        for (size_t i = 0; i < raw.size(); ++i)
            spins[i] = static_cast<ising::Spin>(raw[i]);
        s.add(spins, e);
    }
    return s;
}

void
expectIdentical(const anneal::SampleSet &a, const anneal::SampleSet &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.totalReads(), b.totalReads());
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &sa = a.samples()[i];
        const auto &sb = b.samples()[i];
        EXPECT_EQ(sa.spins, sb.spins) << "sample " << i;
        EXPECT_EQ(sa.energy, sb.energy) << "sample " << i; // bitwise
        EXPECT_EQ(sa.num_occurrences, sb.num_occurrences)
            << "sample " << i;
    }
}

TEST(SampleSetAlgebra, MergeAggregatesDuplicates)
{
    auto a = setOf({{{1, -1}, 2.0}, {{1, 1}, 0.5}});
    auto b = setOf({{{1, -1}, 2.0}, {{-1, -1}, 1.0}});
    a.merge(std::move(b));
    a.finalize();
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.totalReads(), 4u);
    EXPECT_DOUBLE_EQ(a.best().energy, 0.5);
    for (const auto &s : a.samples())
        if (s.energy == 2.0)
            EXPECT_EQ(s.num_occurrences, 2u);
}

TEST(SampleSetAlgebra, MergeAssociativeAndOrderInvariant)
{
    auto make = [] {
        return std::array<anneal::SampleSet, 3>{
            setOf({{{1, -1, 1}, 1.5}, {{1, 1, 1}, -2.0}}),
            setOf({{{1, -1, 1}, 1.5}, {{-1, 1, -1}, 0.0}}),
            setOf({{{-1, -1, -1}, -2.0}, {{1, 1, 1}, -2.0}}),
        };
    };

    // (a + b) + c
    auto abc = make();
    abc[0].merge(std::move(abc[1]));
    abc[0].merge(std::move(abc[2]));
    abc[0].finalize();

    // a + (b + c)
    auto bca = make();
    bca[1].merge(std::move(bca[2]));
    bca[0].merge(std::move(bca[1]));
    bca[0].finalize();

    // c + a + b (different order entirely)
    auto cab = make();
    cab[2].merge(std::move(cab[0]));
    cab[2].merge(std::move(cab[1]));
    cab[2].finalize();

    expectIdentical(abc[0], bca[0]);
    expectIdentical(abc[0], cab[2]);
}

TEST(SampleSetAlgebra, FinalizeIdempotentAndCanonical)
{
    auto a = setOf(
        {{{1, 1}, 0.0}, {{-1, -1}, 0.0}, {{1, -1}, -1.0}});
    a.finalize();
    // Equal energies tie-break lexicographically by spins.
    EXPECT_EQ(a.samples()[0].energy, -1.0);
    EXPECT_LT(a.samples()[1].spins, a.samples()[2].spins);
    auto before = a.samples();
    a.finalize(); // idempotent
    for (size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(a.samples()[i].spins, before[i].spins);
}

// ------------------------------------------- sampler determinism

ising::IsingModel
randomSparseModel(uint64_t seed, size_t n, size_t degree = 4)
{
    Rng rng(seed);
    ising::IsingModel m(n);
    for (uint32_t i = 0; i < n; ++i)
        m.addLinear(i, rng.uniform() * 2 - 1);
    for (uint32_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < degree / 2; ++k) {
            uint32_t j = static_cast<uint32_t>(rng.below(n));
            if (i != j)
                m.addQuadratic(i, j, rng.uniform() * 2 - 1);
        }
    }
    return m;
}

class SamplerDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(SamplerDeterminism, ThreadCountInvariant)
{
    const std::string name = GetParam();
    ising::IsingModel m = randomSparseModel(17, 40);

    anneal::SamplerOpts opts;
    opts.common.num_reads = 60;
    opts.common.seed = 5;
    opts.sweeps = 48;
    opts.extra["qbsolv.subproblem_size"] = 12;
    opts.extra["qbsolv.restarts"] = 6;
    opts.extra["qbsolv.outer_iterations"] = 4;
    opts.extra["sqa.trotter_slices"] = 4;
    if (name == "chainflip")
        opts.chains = {{0, 1, 2}, {10, 11}, {20, 21, 22, 23}};

    opts.common.threads = 1;
    auto one = anneal::makeSampler(name, opts);
    ASSERT_NE(one, nullptr);
    anneal::SampleSet s1 = one->sample(m);

    opts.common.threads = 8;
    auto eight = anneal::makeSampler(name, opts);
    ASSERT_NE(eight, nullptr);
    anneal::SampleSet s8 = eight->sample(m);

    EXPECT_FALSE(s1.empty());
    expectIdentical(s1, s8);
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerDeterminism,
                         ::testing::Values("sa", "sqa", "chainflip",
                                           "descent", "qbsolv"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(SamplerFactory, NamesAndUnknown)
{
    auto names = anneal::samplerNames();
    for (const char *expect : {"sa", "sqa", "exact", "qbsolv",
                               "descent", "chainflip"})
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    // Unknown names fail typed, not with nullptr or a process abort.
    EXPECT_FALSE(anneal::hasSampler("no-such-sampler"));
    EXPECT_TRUE(anneal::hasSampler("sa"));
    try {
        anneal::makeSampler("no-such-sampler", {});
        FAIL() << "expected UnknownSolverError";
    } catch (const anneal::UnknownSolverError &e) {
        EXPECT_EQ(e.name(), "no-such-sampler");
        EXPECT_NE(std::string(e.what()).find("sa"),
                  std::string::npos);
    }
    EXPECT_NE(anneal::samplerNamesJoined().find("sa"),
              std::string::npos);
}

TEST(SamplerFactory, RegisterExtension)
{
    anneal::registerSampler(
        "test-descent", [](const anneal::SamplerOpts &o) {
            anneal::DescentSampler::Params p;
            static_cast<anneal::CommonParams &>(p) = o.common;
            return std::make_unique<anneal::DescentSampler>(p);
        });
    auto s = anneal::makeSampler("test-descent", {});
    ASSERT_NE(s, nullptr);
    ising::IsingModel m = randomSparseModel(3, 10);
    EXPECT_FALSE(s->sample(m).empty());
}

// -------------------------------------------------- exact sharding

TEST(ExactParallel, ShardedEnumerationThreadInvariant)
{
    // 18 variables = 2^18 states: several fixed shards.
    ising::IsingModel m = randomSparseModel(23, 18);

    anneal::ExactSolver::Params p1;
    p1.threads = 1;
    auto r1 = anneal::ExactSolver(p1).solve(m);
    anneal::ExactSolver::Params p8;
    p8.threads = 8;
    auto r8 = anneal::ExactSolver(p8).solve(m);

    EXPECT_EQ(r1.min_energy, r8.min_energy); // bitwise
    ASSERT_EQ(r1.ground_states.size(), r8.ground_states.size());
    for (size_t i = 0; i < r1.ground_states.size(); ++i)
        EXPECT_EQ(r1.ground_states[i], r8.ground_states[i]);
    EXPECT_EQ(r1.truncated, r8.truncated);

    // Every reported state really attains the minimum.
    for (const auto &gs : r1.ground_states)
        EXPECT_NEAR(m.energy(gs), r1.min_energy, 1e-6);

    // The sampler view is deterministic too.
    anneal::SampleSet s1 = anneal::ExactSolver(p1).sample(m);
    anneal::SampleSet s8 = anneal::ExactSolver(p8).sample(m);
    expectIdentical(s1, s8);
}

TEST(ExactParallel, MatchesSmallUnshardedCase)
{
    // 8 variables stays single-shard; descent can verify the optimum.
    ising::IsingModel m = randomSparseModel(29, 8);
    auto res = anneal::ExactSolver().solve(m);
    double brute = std::numeric_limits<double>::infinity();
    ising::SpinVector spins(8, -1);
    for (uint32_t mask = 0; mask < 256; ++mask) {
        for (uint32_t b = 0; b < 8; ++b)
            spins[b] = (mask >> b) & 1 ? 1 : -1;
        brute = std::min(brute, m.energy(spins));
    }
    EXPECT_NEAR(res.min_energy, brute, 1e-9);
}

// ------------------------------------------------ embedding invariance

TEST(EmbedParallel, EmbeddingThreadInvariant)
{
    // A 4x4 logical grid onto a C3 Chimera.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    auto id = [](uint32_t r, uint32_t c) { return r * 4 + c; };
    for (uint32_t r = 0; r < 4; ++r)
        for (uint32_t c = 0; c < 4; ++c) {
            if (c + 1 < 4)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < 4)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    auto hw = chimera::chimeraGraph(3);

    embed::EmbedParams p;
    p.seed = 11;
    p.tries = 8;

    p.threads = 1;
    auto e1 = embed::findEmbedding(edges, 16, hw, p);
    p.threads = 8;
    auto e8 = embed::findEmbedding(edges, 16, hw, p);
    p.threads = 3;
    auto e3 = embed::findEmbedding(edges, 16, hw, p);

    ASSERT_TRUE(e1.has_value());
    ASSERT_TRUE(e8.has_value());
    ASSERT_TRUE(e3.has_value());
    EXPECT_EQ(e1->chains, e8->chains);
    EXPECT_EQ(e1->chains, e3->chains);
}

} // namespace
