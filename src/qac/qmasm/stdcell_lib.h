/**
 * @file
 * The generated QMASM standard-cell library (paper, Section 4.3.2):
 * every Table 5 cell as a QMASM macro with weights, couplings, and a
 * debugging assert, analogous to the paper's stdcell.qmasm.
 */

#ifndef QAC_QMASM_STDCELL_LIB_H
#define QAC_QMASM_STDCELL_LIB_H

#include <string>

#include "qac/qmasm/program.h"

namespace qac::qmasm {

/** Macro-only program holding the standard-cell library (cached). */
const Program &stdcellLibrary();

/** The library as QMASM text (the stdcell.qmasm artifact). */
std::string stdcellText();

/** Include resolver mapping "stdcell.qmasm" to stdcellText(). */
IncludeResolver stdcellResolver();

} // namespace qac::qmasm

#endif // QAC_QMASM_STDCELL_LIB_H
