/**
 * @file
 * Spin-vector types shared by models and samplers.
 *
 * Variables are "physics Booleans": False = -1, True = +1 (paper,
 * Section 2).
 */

#ifndef QAC_ISING_SOLUTION_H
#define QAC_ISING_SOLUTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace qac::ising {

/** One spin: -1 (False) or +1 (True). */
using Spin = int8_t;

/** An assignment to every variable of a model. */
using SpinVector = std::vector<Spin>;

/** Map a spin to a conventional Boolean. */
inline bool spinToBool(Spin s) { return s > 0; }

/** Map a conventional Boolean to a spin. */
inline Spin boolToSpin(bool b) { return b ? Spin{1} : Spin{-1}; }

/**
 * Enumerate index @p idx (0 .. 2^n-1) as a spin vector of length @p n;
 * bit b of idx maps to spins[b], with 1-bits becoming +1.
 */
SpinVector indexToSpins(uint64_t idx, size_t n);

/** Inverse of indexToSpins(). */
uint64_t spinsToIndex(const SpinVector &spins);

/** Render e.g. "+-++" for debugging. */
std::string toString(const SpinVector &spins);

} // namespace qac::ising

#endif // QAC_ISING_SOLUTION_H
