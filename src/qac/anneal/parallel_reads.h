/**
 * @file
 * Shared fan-out/merge skeleton for the parallel samplers.
 *
 * Reads are grouped into fixed-size chunks; each chunk builds a
 * partial SampleSet on one worker and the partials reduce through
 * SampleSet::merge in chunk order.  Because read k's randomness comes
 * from Rng::streamAt(seed, k) and the merged set finalizes into a
 * canonical order, the result is bitwise-identical for any thread
 * count — chunking and scheduling affect wall-clock only.
 */

#ifndef QAC_ANNEAL_PARALLEL_READS_H
#define QAC_ANNEAL_PARALLEL_READS_H

#include <functional>

#include "qac/anneal/sampleset.h"

namespace qac::anneal::detail {

/**
 * Run @p num_reads independent reads across @p threads workers
 * (0 = hardware concurrency) and reduce into one finalized SampleSet.
 * @p read_fn must derive all randomness for read k from
 * Rng::streamAt(seed, k) and add its sample(s) to the partial set.
 * read_fn runs concurrently; shared model views must be safe for
 * concurrent reads (ising::CompiledModel is immutable, and
 * IsingModel::adjacency() builds thread-safely via std::call_once).
 */
SampleSet
sampleReads(uint32_t num_reads, uint32_t threads,
            const std::function<void(uint32_t read, SampleSet &part)>
                &read_fn);

} // namespace qac::anneal::detail

#endif // QAC_ANNEAL_PARALLEL_READS_H
