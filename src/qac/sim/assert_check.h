/**
 * @file
 * QMASM `!assert` checking against simulated traces.
 *
 * The annealer path only checks asserts on *returned samples* — a
 * wrong gadget whose ground state happens to dodge the sampled
 * assignments goes unnoticed.  Here the same assert expressions are
 * evaluated against the event-driven simulator's net values instead:
 * the join between assembled symbols ("$g3.Y", "C[2]") and netlist
 * nets comes from qmasm::symbolNets, so every assert the stdcell
 * library plants is checked against the classical semantics of the
 * circuit, not against whatever the annealer returned.
 */

#ifndef QAC_SIM_ASSERT_CHECK_H
#define QAC_SIM_ASSERT_CHECK_H

#include <string>
#include <vector>

#include "qac/qmasm/assemble.h"
#include "qac/sim/event_sim.h"

namespace qac::sim {

struct AssertTraceResult
{
    size_t checked = 0;
    size_t failed = 0;
    /** Asserts referencing an X/Z net (cannot be decided). */
    size_t indeterminate = 0;
    /** The failing/indeterminate expressions (deduplicated, capped). */
    std::vector<std::string> offenders;

    bool ok() const { return failed == 0 && indeterminate == 0; }
    void merge(const AssertTraceResult &other);
};

/**
 * Evaluate every assert of @p assembled against the simulator's
 * current state.  @p sim must simulate the same netlist the program
 * was lowered from.  An assert whose symbols include an unknown net
 * value counts as indeterminate, never as a silent pass.
 */
AssertTraceResult
checkAssertsOnState(const qmasm::Assembled &assembled,
                    const EventSimulator &sim);

} // namespace qac::sim

#endif // QAC_SIM_ASSERT_CHECK_H
