#include "qac/sim/event_sim.h"

#include <algorithm>

#include "qac/stats/registry.h"
#include "qac/util/logging.h"

namespace qac::sim {

EventSimulator::EventSimulator(const netlist::Netlist &nl)
    : nl_(nl), values_(nl.numNets(), Logic::Z),
      dff_state_(nl.numGates(), Logic::X), fanout_(nl.numNets()),
      in_pending_(nl.numGates(), 0)
{
    values_[netlist::kConst0] = Logic::L0;
    values_[netlist::kConst1] = Logic::L1;
    // Input-port nets are externally driven: they start X (present
    // but unknown) rather than Z (undriven), so the lint can tell
    // "caller never set this" from "nothing drives this".
    for (const auto &p : nl.ports())
        if (p.dir == netlist::PortDir::Input)
            for (netlist::NetId n : p.bits)
                values_[n] = Logic::X;
    const auto &gates = nl.gates();
    for (uint32_t gi = 0; gi < gates.size(); ++gi) {
        for (netlist::NetId in : gates[gi].inputs)
            fanout_[in].push_back(gi);
        // Driven nets lose their Z default; flop outputs publish X
        // state below, combinational outputs get evaluated at time 0.
        values_[gates[gi].output] = Logic::X;
    }
    for (uint32_t gi = 0; gi < gates.size(); ++gi) {
        if (cells::gateInfo(gates[gi].type).sequential)
            values_[gates[gi].output] = dff_state_[gi];
        else
            schedule(gi);
    }
    settle();
}

void
EventSimulator::schedule(uint32_t gate)
{
    if (in_pending_[gate])
        return;
    in_pending_[gate] = 1;
    pending_.push_back(gate);
}

void
EventSimulator::setNet(netlist::NetId net, Logic v)
{
    if (values_[net] == v)
        return;
    values_[net] = v;
    ++changes_;
    if (tracing_)
        trace_.push_back({time_, net, v});
    for (uint32_t gi : fanout_[net])
        if (!cells::gateInfo(nl_.gates()[gi].type).sequential)
            schedule(gi);
}

void
EventSimulator::settle()
{
    const auto &gates = nl_.gates();
    // A delta cycle evaluates the pending set in ascending gate index;
    // changes produced feed the next delta.  An acyclic netlist
    // settles within its logic depth; anything still toggling after
    // numGates + 1 deltas must sit on a combinational cycle.
    const size_t max_deltas = gates.size() + 1;
    std::vector<uint32_t> wave;
    Logic in_vals[4];
    for (size_t delta = 0; !pending_.empty(); ++delta) {
        if (delta >= max_deltas)
            fatal("netlist '%s' does not settle (combinational "
                  "cycle?)", nl_.name().c_str());
        wave.clear();
        std::swap(wave, pending_);
        std::sort(wave.begin(), wave.end());
        for (uint32_t gi : wave)
            in_pending_[gi] = 0;
        for (uint32_t gi : wave) {
            const netlist::Gate &g = gates[gi];
            for (size_t k = 0; k < g.inputs.size(); ++k)
                in_vals[k] = values_[g.inputs[k]];
            ++events_;
            setNet(g.output, evalGate4(g.type, in_vals));
        }
    }
}

void
EventSimulator::setInput(const std::string &name, uint64_t value)
{
    const netlist::Port &p = inPort(name);
    for (size_t i = 0; i < p.bits.size(); ++i)
        setNet(p.bits[i], fromBool((value >> i) & 1));
}

void
EventSimulator::setInputLogic(const std::string &name,
                              const std::vector<Logic> &bits)
{
    const netlist::Port &p = inPort(name);
    if (bits.size() != p.bits.size())
        fatal("port '%s' is %zu bits wide, got %zu", name.c_str(),
              p.bits.size(), bits.size());
    for (size_t i = 0; i < p.bits.size(); ++i)
        setNet(p.bits[i], bits[i]);
}

void
EventSimulator::setInputAll(const std::string &name, Logic v)
{
    const netlist::Port &p = inPort(name);
    for (netlist::NetId n : p.bits)
        setNet(n, v);
}

void
EventSimulator::eval()
{
    ++time_;
    settle();
}

void
EventSimulator::step()
{
    ++time_;
    const auto &gates = nl_.gates();
    // Sample every D first (nonblocking semantics), then publish.
    std::vector<std::pair<uint32_t, Logic>> next;
    for (uint32_t gi = 0; gi < gates.size(); ++gi)
        if (cells::gateInfo(gates[gi].type).sequential)
            next.emplace_back(gi, drive(values_[gates[gi].inputs[0]]));
    for (const auto &[gi, d] : next) {
        dff_state_[gi] = d;
        setNet(gates[gi].output, d);
    }
    settle();
}

void
EventSimulator::reset(Logic v)
{
    ++time_;
    const auto &gates = nl_.gates();
    for (uint32_t gi = 0; gi < gates.size(); ++gi) {
        if (!cells::gateInfo(gates[gi].type).sequential)
            continue;
        dff_state_[gi] = v;
        setNet(gates[gi].output, v);
    }
    settle();
}

std::vector<Logic>
EventSimulator::portLogic(const std::string &name) const
{
    const netlist::Port &p = anyPort(name);
    std::vector<Logic> bits(p.bits.size());
    for (size_t i = 0; i < p.bits.size(); ++i)
        bits[i] = values_[p.bits[i]];
    return bits;
}

uint64_t
EventSimulator::output(const std::string &name) const
{
    const netlist::Port &p = anyPort(name);
    if (p.bits.size() > 64)
        fatal("port '%s' too wide for integer read", name.c_str());
    uint64_t v = 0;
    for (size_t i = 0; i < p.bits.size(); ++i) {
        Logic b = values_[p.bits[i]];
        if (!isKnown(b))
            fatal("port '%s' bit %zu is %c (unset input or "
                  "uninitialized flop upstream)",
                  name.c_str(), i, logicChar(b));
        if (toBool(b))
            v |= uint64_t{1} << i;
    }
    return v;
}

bool
EventSimulator::portKnown(const std::string &name) const
{
    const netlist::Port &p = anyPort(name);
    for (netlist::NetId n : p.bits)
        if (!isKnown(values_[n]))
            return false;
    return true;
}

void
EventSimulator::enableTrace()
{
    if (tracing_)
        return;
    tracing_ = true;
    // Snapshot the current state so a VCD dump starts fully defined.
    for (netlist::NetId n = 0; n < values_.size(); ++n)
        trace_.push_back({time_, n, values_[n]});
}

const netlist::Port &
EventSimulator::inPort(const std::string &name) const
{
    const netlist::Port &p = anyPort(name);
    if (p.dir != netlist::PortDir::Input)
        fatal("port '%s' is not an input", name.c_str());
    return p;
}

const netlist::Port &
EventSimulator::anyPort(const std::string &name) const
{
    const netlist::Port *p = nl_.findPort(name);
    if (!p)
        fatal("no port named '%s'", name.c_str());
    return *p;
}

} // namespace qac::sim
