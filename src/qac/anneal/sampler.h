/**
 * @file
 * The unified sampler API.
 *
 * Every classical stand-in for the D-Wave hardware — simulated
 * annealing, path-integral SQA, the chain-flip annealer, greedy
 * descent, exact enumeration, and the qbsolv decomposer — sits behind
 * one abstract Sampler with a shared CommonParams (seed, num_reads,
 * threads) and a string-keyed factory, so tools, benches, and the
 * compiler core never dispatch on concrete classes.
 *
 * Determinism contract: for a fixed seed, sample() returns a
 * bitwise-identical SampleSet regardless of the threads setting.
 * Read/restart k always draws from Rng::streamAt(seed, k).
 */

#ifndef QAC_ANNEAL_SAMPLER_H
#define QAC_ANNEAL_SAMPLER_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qac/anneal/sampleset.h"
#include "qac/ising/model.h"
#include "qac/util/logging.h"

namespace qac::anneal {

/**
 * Multi-spin-coding policy for samplers with a packed kernel
 * (DESIGN.md §13).  By the determinism contract the packed and scalar
 * paths produce bitwise-identical SampleSets, so this knob — like
 * threads — is purely a performance choice and is excluded from
 * result provenance.
 */
enum class PackedMode : uint8_t
{
    Auto = 0, ///< packed when the read count makes it worthwhile
    On = 1,   ///< always packed
    Off = 2,  ///< always the scalar per-read kernel
};

/** Knobs shared by every sampler's Params (via inheritance). */
struct CommonParams
{
    uint32_t num_reads = 100; ///< independent reads / restarts
    uint64_t seed = 1;        ///< base seed; read k uses streamAt(seed, k)
    uint32_t threads = 0;     ///< worker threads; 0 = hardware concurrency
    PackedMode packed = PackedMode::Auto; ///< multi-spin coding policy
};

/** Abstract sampler: minimize an Ising model, report a SampleSet. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /**
     * Draw samples from @p model.  Bitwise-deterministic for a fixed
     * seed regardless of the threads setting.
     */
    virtual SampleSet sample(const ising::IsingModel &model) const = 0;
};

/**
 * Options every makeSampler builder understands.  Sampler-specific
 * knobs beyond these travel in the string-keyed @p extra map, e.g.
 * "qbsolv.subproblem_size", "qbsolv.outer_iterations",
 * "qbsolv.restarts", "sqa.trotter_slices", "sqa.beta".
 */
struct SamplerOpts
{
    CommonParams common;
    uint32_t sweeps = 0;       ///< anneal length; 0 = sampler default
    bool greedy_polish = true; ///< steepest-descent after each read
    /** Chain groups for "chainflip" (EmbeddedModel::dense_chains). */
    std::vector<std::vector<uint32_t>> chains;
    std::map<std::string, double> extra;
};

/**
 * Thrown by makeSampler for a name with no registration.  Derives
 * FatalError so tool mains that already catch user errors report it
 * cleanly; programmatic callers (the service daemon's request
 * validation) catch it by type and answer with a typed error frame
 * instead of dying.
 */
class UnknownSolverError : public FatalError
{
  public:
    explicit UnknownSolverError(const std::string &name);

    /** The name that failed to resolve. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * Build the sampler registered under @p name ("sa", "sqa", "exact",
 * "qbsolv", "descent", "chainflip", plus any registerSampler
 * extensions).  Never returns nullptr: an unknown name throws
 * UnknownSolverError (probe with hasSampler() first when an error is
 * expected and cheap rejection is wanted).
 */
std::unique_ptr<Sampler> makeSampler(const std::string &name,
                                     const SamplerOpts &opts);

/** True when @p name has a registered builder. */
bool hasSampler(const std::string &name);

/** All registered sampler names, sorted. */
std::vector<std::string> samplerNames();

/** "a|b|c" over samplerNames(), for usage strings. */
std::string samplerNamesJoined();

using SamplerBuilder =
    std::function<std::unique_ptr<Sampler>(const SamplerOpts &)>;

/** Extend or override the factory registration for @p name. */
void registerSampler(const std::string &name, SamplerBuilder builder);

} // namespace qac::anneal

#endif // QAC_ANNEAL_SAMPLER_H
