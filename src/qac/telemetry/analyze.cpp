#include "qac/telemetry/analyze.h"

#include <cmath>

#include "qac/stats/registry.h"
#include "qac/telemetry/json_util.h"

namespace qac::telemetry {

// Uses only SampleSet's inline accessors (samples(), totalReads()):
// the telemetry library sits *below* qac_anneal in the link order so
// the samplers can feed it, which rules out calling into sampleset.cpp.

Analysis
analyze(const anneal::SampleSet &set, const AnalyzeOptions &opts)
{
    Analysis a;
    a.tts_target = opts.tts_target;
    a.total_reads = set.totalReads();
    if (set.empty() || a.total_reads == 0)
        return a;

    double best = set.samples().front().energy;
    for (const auto &s : set.samples())
        best = std::min(best, s.energy);
    a.best_energy = best;
    a.ground_known = std::isfinite(opts.ground_energy);
    a.ground_energy = a.ground_known ? opts.ground_energy : best;

    uint64_t hits = 0;
    double residual_sum = 0.0;
    for (const auto &s : set.samples()) {
        // A sampler can undercut a supplied (approximate) ground
        // estimate; clamp so residuals stay non-negative and such
        // reads count as success.
        double residual = std::max(0.0, s.energy - a.ground_energy);
        if (residual <= opts.energy_tol) {
            hits += s.num_occurrences;
            residual = 0.0;
        }
        residual_sum += residual * s.num_occurrences;
        a.residual_max = std::max(a.residual_max, residual);
    }
    const double reads = static_cast<double>(a.total_reads);
    a.success_probability = static_cast<double>(hits) / reads;
    a.residual_mean = residual_sum / reads;

    const double p = a.success_probability;
    if (p <= 0.0)
        a.tts_reads = std::numeric_limits<double>::infinity();
    else if (p >= 1.0)
        a.tts_reads = 1.0;
    else
        a.tts_reads = std::log(1.0 - opts.tts_target) /
                      std::log(1.0 - p);
    a.tts_sweeps =
        a.tts_reads * static_cast<double>(opts.sweeps_per_read);
    if (opts.elapsed_ns > 0)
        a.tts_ns = a.tts_reads *
                   (static_cast<double>(opts.elapsed_ns) / reads);
    return a;
}

std::string
analysisJson(const std::string &solver, const Analysis &a)
{
    using detail::appendDouble;
    using detail::appendString;
    using detail::appendU64;

    std::string out = "{\"kind\":\"analysis\",\"solver\":";
    appendString(out, solver);
    out += ",\"reads\":";
    appendU64(out, a.total_reads);
    out += ",\"best_energy\":";
    appendDouble(out, a.best_energy);
    out += ",\"ground_energy\":";
    appendDouble(out, a.ground_energy);
    out += ",\"ground_known\":";
    out += a.ground_known ? "true" : "false";
    out += ",\"success_probability\":";
    appendDouble(out, a.success_probability);
    out += ",\"residual_mean\":";
    appendDouble(out, a.residual_mean);
    out += ",\"residual_max\":";
    appendDouble(out, a.residual_max);
    out += ",\"tts_target\":";
    appendDouble(out, a.tts_target);
    out += ",\"tts99_reads\":";
    appendDouble(out, a.tts_reads); // null when infinite (p == 0)
    out += ",\"tts99_sweeps\":";
    appendDouble(out, a.tts_sweeps);
    out += '}';
    return out;
}

void
recordAnalysisStats(const Analysis &a)
{
    if (!stats::Registry::global().enabled() || a.total_reads == 0)
        return;
    stats::record("anneal.analysis.success_probability",
                  a.success_probability);
    stats::record("anneal.analysis.residual_mean", a.residual_mean);
    stats::record("anneal.analysis.residual_max", a.residual_max);
    if (std::isfinite(a.tts_reads)) {
        stats::record("anneal.analysis.tts99_reads", a.tts_reads);
        if (a.tts_ns > 0)
            stats::record("anneal.analysis.tts99_ns", a.tts_ns);
    } else {
        // No read hit the target: count the miss rather than poison
        // the distributions with infinity.
        stats::count("anneal.analysis.tts99_unreached");
    }
}

} // namespace qac::telemetry
