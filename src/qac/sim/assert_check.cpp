#include "qac/sim/assert_check.h"

#include <algorithm>

#include "qac/qmasm/edif2qmasm.h"
#include "qac/util/logging.h"

namespace qac::sim {

namespace {

constexpr size_t kMaxOffenders = 16;

void
addOffender(std::vector<std::string> &offenders, std::string text)
{
    if (offenders.size() >= kMaxOffenders)
        return;
    if (std::find(offenders.begin(), offenders.end(), text) !=
        offenders.end())
        return;
    offenders.push_back(std::move(text));
}

} // namespace

void
AssertTraceResult::merge(const AssertTraceResult &other)
{
    checked += other.checked;
    failed += other.failed;
    indeterminate += other.indeterminate;
    for (const auto &o : other.offenders)
        addOffender(offenders, o);
}

AssertTraceResult
checkAssertsOnState(const qmasm::Assembled &assembled,
                    const EventSimulator &sim)
{
    AssertTraceResult res;
    if (assembled.asserts.empty())
        return res;

    // Known net values keyed by every symbol the lowering named.
    // Unknown nets are deliberately left out: an assert touching one
    // trips evalAssertExpr's unknown-symbol fatal, which we classify
    // as indeterminate rather than letting X decay to a boolean.
    std::map<std::string, bool> values;
    for (const auto &[sym, net] : qmasm::symbolNets(sim.netlist())) {
        Logic v = sim.value(net);
        if (isKnown(v))
            values[sym] = toBool(v);
    }

    for (const auto &expr : assembled.asserts) {
        ++res.checked;
        try {
            if (!qmasm::evalAssertExpr(expr, values)) {
                ++res.failed;
                addOffender(res.offenders, "FAIL " + expr);
            }
        } catch (const FatalError &) {
            ++res.indeterminate;
            addOffender(res.offenders, "X    " + expr);
        }
    }
    return res;
}

} // namespace qac::sim
