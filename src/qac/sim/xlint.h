/**
 * @file
 * X-propagation lint: find nets that stay unknown even when every
 * input is driven and every flop is reset.
 *
 * Such nets are floating or underconstrained — nothing in the design
 * ever determines them — and the QMASM lowering turns them into free
 * Hamiltonian variables whose ground-state value is arbitrary: a
 * silently-wrong compile.  core::compile runs this lint on every
 * netlist frontend and reports offenders as structured warnings plus
 * the qac.sim.x_nets / qac.sim.z_nets stats.
 */

#ifndef QAC_SIM_XLINT_H
#define QAC_SIM_XLINT_H

#include <string>
#include <vector>

#include "qac/netlist/netlist.h"

namespace qac::sim {

struct XLintReport
{
    /** One offender: the net and why it is unresolved. */
    struct Offender
    {
        netlist::NetId net;
        std::string name;
        bool undriven;  ///< true: no driver at all (Z); false: X
        bool read;      ///< feeds a gate input or an output port bit
    };

    std::vector<Offender> offenders;
    size_t nets_checked = 0;

    bool clean() const { return offenders.empty(); }
    /** Offenders that actually influence the design (read == true). */
    size_t numRead() const;
};

/**
 * Drive every input port to 0, reset every flop to 0, settle, and
 * report each net still X or Z.  Records qac.sim.x_nets (offenders
 * feeding logic or outputs) and qac.sim.z_nets (fully dangling) and,
 * when @p warn_offenders is set, emits one structured warn() per
 * offending net (capped) so compiles flag underconstrained
 * Hamiltonians instead of silently emitting them.
 */
XLintReport xLint(const netlist::Netlist &nl,
                  bool warn_offenders = false);

} // namespace qac::sim

#endif // QAC_SIM_XLINT_H
