/**
 * @file
 * Reproduces the Section 5 NP-solving examples as measurements:
 * circuit satisfiability (5.2) and integer factoring (5.3) run
 * backward, reporting valid-solution fractions and time-to-solution
 * for both annealers (SA and path-integral SQA).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "qac/core/compiler.h"
#include "qac/core/program.h"

#include "bench_stats.h"

namespace {

using namespace qac;

const char *kCircsat = R"(
module circsat (a, b, c, y);
  input a, b, c;
  output y;
  wire [1:10] x;
  assign x[1] = a;
  assign x[2] = b;
  assign x[3] = c;
  assign x[4] = ~x[3];
  assign x[5] = x[1] | x[2];
  assign x[6] = ~x[4];
  assign x[7] = x[1] & x[2] & x[4];
  assign x[8] = x[5] | x[6];
  assign x[9] = x[6] | x[7];
  assign x[10] = x[8] & x[9] & x[7];
  assign y = x[10];
endmodule
)";

const char *kMult = R"(
module mult (A, B, C);
  input [3:0] A;
  input [3:0] B;
  output [7:0] C;
  assign C = A * B;
endmodule
)";

core::Executable
makeCircsat()
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "circsat";
    core::Executable prog(core::compile(kCircsat, opts));
    prog.pinDirective("y := true");
    return prog;
}

core::Executable
makeFactor()
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "mult";
    core::Executable prog(core::compile(kMult, opts));
    prog.pinDirective("C[7:0] := 10001111"); // 143
    return prog;
}

void
printValidFractionSweep()
{
    std::printf("--- Section 5.2/5.3 backward runs: valid-solution "
                "fraction vs anneal length ---\n");
    std::printf("%-10s %-6s %8s %12s %12s\n", "problem", "solver",
                "sweeps", "valid frac", "found 11x13");
    auto circsat = makeCircsat();
    auto factor = makeFactor();
    const std::vector<uint32_t> sweep_lengths =
        benchstats::smoke() ? std::vector<uint32_t>{64, 256}
                            : std::vector<uint32_t>{64, 256, 1024};
    for (uint32_t sweeps : sweep_lengths) {
        for (const char *solver : {"sa", "sqa"}) {
            const char *sname =
                std::string(solver) == "sa" ? "SA" : "SQA";
            core::Executable::RunOptions ro;
            ro.solver = solver;
            ro.common.num_reads = benchstats::smoke() ? 40 : 200;
            ro.sweeps = sweeps;
            ro.common.seed = 11;
            auto rc = circsat.run(ro);
            std::printf("%-10s %-6s %8u %12.3f %12s\n", "circsat",
                        sname, sweeps, rc.validFraction(), "-");
            auto rf = factor.run(ro);
            bool found = false;
            for (auto *cand : rf.validCandidates()) {
                uint64_t a = factor.portValue(*cand, "A");
                if (a == 11 || a == 13)
                    found = true;
            }
            std::printf("%-10s %-6s %8u %12.3f %12s\n", "factor143",
                        sname, sweeps, rf.validFraction(),
                        found ? "yes" : "no");
        }
    }
    std::printf("(shape: valid fraction grows with anneal length; "
                "factoring is the harder landscape)\n\n");
}

void
BM_CircsatBackward(benchmark::State &state)
{
    auto prog = makeCircsat();
    core::Executable::RunOptions ro;
    ro.common.num_reads = 50;
    ro.sweeps = static_cast<uint32_t>(state.range(0));
    uint64_t valid = 0, total = 0;
    for (auto _ : state) {
        ro.common.seed += 1;
        auto rr = prog.run(ro);
        for (auto *c : rr.validCandidates())
            valid += c->occurrences;
        total += rr.total_reads;
    }
    state.counters["valid_frac"] =
        total ? static_cast<double>(valid) / total : 0;
}
BENCHMARK(BM_CircsatBackward)->Arg(128)->Arg(512)->Unit(
    benchmark::kMillisecond);

void
BM_Factor143Backward(benchmark::State &state)
{
    auto prog = makeFactor();
    core::Executable::RunOptions ro;
    ro.common.num_reads = 50;
    ro.sweeps = static_cast<uint32_t>(state.range(0));
    uint64_t valid = 0, total = 0;
    for (auto _ : state) {
        ro.common.seed += 1;
        auto rr = prog.run(ro);
        for (auto *c : rr.validCandidates())
            valid += c->occurrences;
        total += rr.total_reads;
    }
    state.counters["valid_frac"] =
        total ? static_cast<double>(valid) / total : 0;
}
BENCHMARK(BM_Factor143Backward)->Arg(512)->Arg(2048)->Unit(
    benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("npsolve");
    printValidFractionSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
