#!/bin/sh
# Smoke-run every bench binary and validate its JSON artifact.
#
# Each bench shrinks its workload to a seconds-scale configuration when
# QAC_BENCH_SMOKE=1 (see bench/bench_stats.h) while still exercising
# the full code path and emitting BENCH_<name>.json.  This script runs
# every bench_* binary that way in a scratch directory, checks the exit
# status, and checks that the emitted JSON parses.  Wired into ctest
# under the label "bench-smoke" so perf-harness rot is caught by the
# regular test run, not discovered the next time someone benchmarks.
#
# Usage: bench_smoke.sh <bench-binary-dir>

set -u

if [ $# -ne 1 ] || [ ! -d "$1" ]; then
    echo "usage: $0 <bench-binary-dir>" >&2
    exit 2
fi
bench_dir=$(cd "$1" && pwd)

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
cd "$scratch" || exit 2

found=0
failed=0
for bench in "$bench_dir"/bench_*; do
    [ -x "$bench" ] || continue
    found=$((found + 1))
    name=$(basename "$bench")
    # --benchmark_filter matches nothing: the google-benchmark cases
    # are the timing half, and timing is not what a smoke pass checks.
    if ! QAC_BENCH_SMOKE=1 "$bench" --benchmark_filter='NONE' \
            >"$name.out" 2>&1; then
        echo "FAIL $name: exited nonzero; output:" >&2
        cat "$name.out" >&2
        failed=1
        continue
    fi
    json="BENCH_${name#bench_}.json"
    if [ ! -f "$json" ]; then
        echo "FAIL $name: did not write $json" >&2
        failed=1
        continue
    fi
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            "$json"; then
        echo "FAIL $name: $json does not parse" >&2
        failed=1
        continue
    fi
    echo "ok   $name ($json)"
done

if [ "$found" -eq 0 ]; then
    echo "FAIL: no bench_* binaries in $bench_dir" >&2
    exit 1
fi
exit "$failed"
