/**
 * @file
 * Shared text/JSON writers for stats-registry snapshots.
 *
 * Both CLIs, the benchmarks, and the tests consume the same JSON schema:
 *
 *   {"schema":"qac-stats-v1","metrics":[
 *     {"path":"compile.gates","kind":"counter","value":42},
 *     {"path":"compile.synth","kind":"timer","calls":1,"total_ns":12345},
 *     {"path":"embed.minorminer.chain_len","kind":"distribution",
 *      "count":9,"sum":...,"min":...,"max":...,"mean":...,"stddev":...}]}
 *
 * The text report groups metrics by the first dotted-path segment:
 *
 *   [compile]
 *     gates                    42
 *     synth                    1.234 ms (1 call)
 */

#ifndef QAC_STATS_REPORT_H
#define QAC_STATS_REPORT_H

#include <string>
#include <vector>

#include "qac/stats/registry.h"

namespace qac::stats {

/** Human-readable report over @p metrics (sorted by path). */
std::string textReport(const std::vector<Metric> &metrics);

/**
 * qac-stats-v1 JSON over @p metrics.  @p manifest_json, when
 * non-empty, must be a complete JSON object; it is embedded verbatim
 * as a top-level "manifest" key (run provenance — see
 * telemetry/manifest.h).
 */
std::string jsonReport(const std::vector<Metric> &metrics,
                       const std::string &manifest_json = "");

/** textReport(Registry::global().snapshot()). */
std::string textReport();

/** jsonReport(Registry::global().snapshot()). */
std::string jsonReport();

/** Write jsonReport() to @p path; returns false on I/O failure. */
bool writeJsonReport(const std::string &path);

/** As above, with a "manifest" provenance block. */
bool writeJsonReport(const std::string &path,
                     const std::string &manifest_json);

} // namespace qac::stats

#endif // QAC_STATS_REPORT_H
