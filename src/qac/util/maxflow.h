/**
 * @file
 * Dinic max-flow on small directed networks.
 *
 * Substrate for roof duality (Section 4.4 of the paper: "qmasm uses
 * SAPI's implementation of roof duality to elide qubits whose final value
 * can be determined a priori").  Roof duality reduces to an s-t max-flow
 * computation on an implication network; see embed/roof_duality.cpp.
 */

#ifndef QAC_UTIL_MAXFLOW_H
#define QAC_UTIL_MAXFLOW_H

#include <cstddef>
#include <vector>

namespace qac {

/** Dinic's algorithm with residual-graph queries. */
class MaxFlow
{
  public:
    explicit MaxFlow(size_t num_nodes);

    /**
     * Add a directed edge u -> v with capacity @p cap (and a zero-capacity
     * reverse edge).  @return index of the forward edge.
     */
    size_t addEdge(size_t u, size_t v, double cap);

    /** Compute the maximum s-t flow. */
    double solve(size_t s, size_t t);

    /** Residual capacity remaining on edge @p id (after solve()). */
    double residual(size_t id) const;

    /**
     * Nodes reachable from @p s in the residual graph (the source side of
     * a minimum cut when s is the flow source).  Call after solve().
     */
    std::vector<bool> reachableFrom(size_t s) const;

    size_t numNodes() const { return adj_.size(); }

  private:
    struct Edge
    {
        size_t to;
        double cap;
        size_t rev; ///< index of the reverse edge in edges_
    };

    bool bfs(size_t s, size_t t);
    double dfs(size_t u, size_t t, double pushed);

    std::vector<Edge> edges_;
    std::vector<std::vector<size_t>> adj_; ///< node -> edge indices
    std::vector<int> level_;
    std::vector<size_t> iter_;
};

} // namespace qac

#endif // QAC_UTIL_MAXFLOW_H
