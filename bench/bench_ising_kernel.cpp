/**
 * @file
 * Before/after throughput of the CSR Ising kernel (DESIGN.md §9).
 *
 * Every sampler's hot loop used to recompute each variable's local
 * field by walking IsingModel::adjacency() per proposal; they now run
 * on ising::CompiledModel + LocalFieldState, where a proposal is one
 * array read and an accepted flip is one CSR row update.  This bench
 * replays both generations of each hot loop — the baselines are
 * faithful replicas of the pre-kernel read bodies, including qbsolv's
 * old full-model energy() per candidate move — on the same
 * chimera-scale model in the same run, and reports spin-flip
 * proposals per second for each sampler.
 *
 * The "packed" row is different in kind (DESIGN.md §13): it compares
 * the scalar per-read SA hot loop against the 64-lane multi-spin
 * kernel on the same 64 reads, in aggregate per-replica proposals per
 * second.  Both sides run the identical dynamics (the packed kernel
 * is bitwise-equal to the scalar path by contract), so the speedup
 * gauge is a pure time ratio.
 *
 * BENCH_ising_kernel.json carries the machine-readable form:
 * bench.kernel.<sampler>.{baseline,kernel}_flips_per_sec and
 * .speedup_x100 gauges.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "qac/anneal/descent.h"
#include "qac/anneal/metropolis.h"
#include "qac/anneal/packed_sweep.h"
#include "qac/anneal/simulated.h"
#include "qac/chimera/chimera.h"
#include "qac/ising/compiled.h"
#include "qac/ising/model.h"
#include "qac/ising/packed.h"
#include "qac/stats/registry.h"
#include "qac/util/rng.h"

#include "bench_stats.h"

namespace {

using namespace qac;

constexpr uint64_t kSeed = 2019;
constexpr double kMaxExpArg = 40.0; // mirrors simulated.cpp's cutoff

/** C_m Chimera hardware graph with random h, J in [-1, 1). */
ising::IsingModel
chimeraModel(uint32_t m)
{
    chimera::HardwareGraph g = chimera::chimeraGraph(m);
    ising::IsingModel model(g.numNodes());
    Rng rng(kSeed);
    for (uint32_t i = 0; i < g.numNodes(); ++i)
        model.addLinear(i, rng.uniform() * 2 - 1);
    for (const auto &[u, v] : g.activeEdges())
        model.addQuadratic(u, v, rng.uniform() * 2 - 1);
    return model;
}

/** One chain per K_{4,4} half-cell: the embedded-model shape. */
std::vector<std::vector<uint32_t>>
halfCellChains(uint32_t m)
{
    std::vector<std::vector<uint32_t>> chains;
    for (uint32_t row = 0; row < m; ++row)
        for (uint32_t col = 0; col < m; ++col)
            for (uint32_t half = 0; half < 2; ++half) {
                std::vector<uint32_t> chain;
                for (uint32_t k = 0; k < 4; ++k)
                    chain.push_back(chimera::chimeraIndex(
                        m, {row, col, half, k}));
                chains.push_back(std::move(chain));
            }
    return chains;
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Run
{
    uint64_t proposals = 0;
    double seconds = 0.0;
    double checksum = 0.0; ///< defeats dead-code elimination
};

struct Config
{
    uint32_t sa_reads, sa_sweeps;
    uint32_t sqa_reads, sqa_sweeps, sqa_slices;
    uint32_t cf_reads, cf_sweeps;
    uint32_t descent_reads;
    uint32_t qb_candidates, qb_sub_n;
};

Config
config()
{
    if (benchstats::smoke())
        return {2, 16, 1, 8, 4, 2, 8, 4, 8, 48};
    // sa/chainflip sweep counts mirror the pipeline's default anneal
    // length (core::RunOptions::sweeps = 512); short schedules
    // under-weight the cold phase, where proposals are cheapest.
    return {8, 256, 4, 24, 8, 8, 128, 24, 120, 48};
}

std::vector<double>
betaSchedule(double b0, double b1, uint32_t sweeps)
{
    std::vector<double> betas(sweeps);
    double ratio =
        (sweeps > 1) ? std::pow(b1 / b0, 1.0 / (sweeps - 1)) : 1.0;
    double b = b0;
    for (uint32_t s = 0; s < sweeps; ++s) {
        betas[s] = b;
        b *= ratio;
    }
    return betas;
}

// --------------------------------------------------------------- SA

Run
saBaseline(const ising::IsingModel &model,
           const std::vector<double> &betas, uint32_t reads)
{
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        ising::SpinVector spins(n);
        for (auto &s : spins)
            s = rng.spin();
        for (double beta : betas) {
            for (uint32_t i = 0; i < n; ++i) {
                double local = model.linear(i);
                for (const auto &[j, w] : adj[i])
                    local += w * spins[j];
                double delta = -2.0 * spins[i] * local;
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-beta * delta))
                    spins[i] = static_cast<ising::Spin>(-spins[i]);
            }
        }
        r.checksum += model.energy(spins);
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{reads} * betas.size() * n;
    return r;
}

Run
saKernel(const ising::CompiledModel &kernel,
         const std::vector<double> &betas, uint32_t reads)
{
    const size_t n = kernel.numVars();
    ising::LocalFieldState state(kernel);
    ising::SpinVector spins(n);
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        for (auto &s : spins)
            s = rng.spin();
        state.reset(spins);
        for (double beta : betas) {
            const double thresh = kMaxExpArg / beta;
            bool drew = false;
            for (uint32_t i = 0; i < n; ++i) {
                const double delta = state.flipDelta(i);
                if (delta >= thresh)
                    continue;
                drew = true;
                if (anneal::metropolisAccept(rng, beta * delta))
                    state.flip(i);
            }
            if (!drew)
                break; // frozen: the remaining sweeps are no-ops
        }
        r.checksum += kernel.energy(state.spins());
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{reads} * betas.size() * n;
    return r;
}

// ------------------------------------------------- packed multi-spin

/**
 * Scalar comparator for the "packed" row: the per-read scalar SA hot
 * loop exactly as simulated.cpp runs it (threshold skip + monotone
 * freeze-out), over all @p reads reads in turn.  Proposals count one
 * per variable per executed sweep, so the packed side's aggregate
 * per-replica count is directly comparable.
 */
Run
packedScalar(const ising::CompiledModel &kernel,
             const std::vector<double> &betas, uint32_t reads)
{
    const size_t n = kernel.numVars();
    ising::LocalFieldState state(kernel);
    ising::SpinVector spins(n);
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        for (auto &s : spins)
            s = rng.spin();
        state.reset(spins);
        for (double beta : betas) {
            const double thresh = kMaxExpArg / beta;
            bool drew = false;
            for (uint32_t i = 0; i < n; ++i) {
                const double delta = state.flipDelta(i);
                if (delta >= thresh)
                    continue;
                drew = true;
                if (anneal::metropolisAccept(rng, beta * delta))
                    state.flip(i);
            }
            r.proposals += n;
            if (!drew)
                break; // frozen: the remaining sweeps are no-ops
        }
        r.checksum += kernel.energy(state.spins());
    }
    r.seconds = now() - t0;
    return r;
}

/**
 * The same reads through the 64-lane multi-spin kernel (DESIGN.md
 * §13), using whichever sweep engine runtime dispatch selects.  A
 * pass's proposal count is n per live lane per sweep — the dynamics
 * are bitwise-identical to packedScalar's, so the two sides execute
 * the same aggregate replica-sweeps and the speedup is a pure time
 * ratio.
 */
Run
packedKernel(const ising::CompiledModel &kernel,
             const std::vector<double> &betas, uint32_t reads)
{
    const size_t n = kernel.numVars();
    const anneal::PackedSweepFn sweep = anneal::selectPackedSweep();
    Run r;
    const double t0 = now();
    for (uint32_t base = 0; base < reads;
         base += ising::PackedState::kLanes) {
        const uint32_t nlanes = std::min<uint32_t>(
            ising::PackedState::kLanes, reads - base);
        ising::PackedState state(kernel);
        anneal::LaneRngs rngs;
        ising::SpinVector spins(n);
        for (uint32_t l = 0; l < nlanes; ++l) {
            Rng rng = Rng::streamAt(kSeed, base + l);
            for (auto &s : spins)
                s = rng.spin();
            state.resetLane(l, spins);
            rngs.set(l, rng);
        }
        uint64_t live = state.activeMask();
        for (double beta : betas) {
            const double thresh = kMaxExpArg / beta;
            const uint64_t drew = sweep(state, rngs, beta, thresh);
            r.proposals +=
                uint64_t(__builtin_popcountll(live)) * n;
            live &= drew;
            if (live == 0)
                break;
        }
        for (uint32_t l = 0; l < nlanes; ++l)
            r.checksum += state.laneEnergy(l);
    }
    r.seconds = now() - t0;
    return r;
}

// -------------------------------------------------------------- SQA

Run
sqaBaseline(const ising::IsingModel &model, uint32_t reads,
            uint32_t sweeps, uint32_t slices)
{
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    const double beta_slice = 5.0 / slices;
    const double g0 = 3.0, g1 = 1e-3;
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        std::vector<ising::SpinVector> rep(slices,
                                           ising::SpinVector(n));
        for (auto &slice : rep)
            for (auto &s : slice)
                s = rng.spin();
        for (uint32_t t = 0; t < sweeps; ++t) {
            double frac = static_cast<double>(t) / (sweeps - 1);
            double gamma = g0 * std::pow(g1 / g0, frac);
            double x = std::tanh(gamma * beta_slice);
            double jperp =
                -0.5 / beta_slice * std::log(std::max(x, 1e-300));
            for (uint32_t m = 0; m < slices; ++m) {
                const auto &up = rep[(m + 1) % slices];
                const auto &dn = rep[(m + slices - 1) % slices];
                auto &cur = rep[m];
                for (uint32_t i = 0; i < n; ++i) {
                    double local = model.linear(i);
                    for (const auto &[j, w] : adj[i])
                        local += w * cur[j];
                    double delta =
                        -2.0 * cur[i] *
                        (beta_slice * local -
                         jperp * beta_slice * (up[i] + dn[i]));
                    if (delta <= 0.0 ||
                        rng.uniform() < std::exp(-delta))
                        cur[i] = static_cast<ising::Spin>(-cur[i]);
                }
            }
        }
        r.checksum += model.energy(rep[0]);
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{reads} * sweeps * slices * n;
    return r;
}

Run
sqaKernel(const ising::CompiledModel &kernel, uint32_t reads,
          uint32_t sweeps, uint32_t slices)
{
    const size_t n = kernel.numVars();
    const double beta_slice = 5.0 / slices;
    const double g0 = 3.0, g1 = 1e-3;
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        std::vector<ising::LocalFieldState> rep(
            slices, ising::LocalFieldState(kernel));
        ising::SpinVector init(n);
        for (auto &st : rep) {
            for (auto &s : init)
                s = rng.spin();
            st.reset(init);
        }
        for (uint32_t t = 0; t < sweeps; ++t) {
            double frac = static_cast<double>(t) / (sweeps - 1);
            double gamma = g0 * std::pow(g1 / g0, frac);
            double x = std::tanh(gamma * beta_slice);
            double jperp =
                -0.5 / beta_slice * std::log(std::max(x, 1e-300));
            for (uint32_t m = 0; m < slices; ++m) {
                const auto &up = rep[(m + 1) % slices];
                const auto &dn = rep[(m + slices - 1) % slices];
                auto &cur = rep[m];
                for (uint32_t i = 0; i < n; ++i) {
                    double delta =
                        beta_slice * cur.flipDelta(i) +
                        2.0 * cur.spin(i) * jperp * beta_slice *
                            (up.spin(i) + dn.spin(i));
                    if (delta <= 0.0 ||
                        anneal::metropolisAccept(rng, delta))
                        cur.flip(i);
                }
            }
        }
        r.checksum += rep[0].energy();
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{reads} * sweeps * slices * n;
    return r;
}

// -------------------------------------------------------- chainflip

struct InternalEdge
{
    uint32_t i, j;
    double w;
};

std::vector<std::vector<InternalEdge>>
internalEdges(const ising::IsingModel &model,
              const std::vector<std::vector<uint32_t>> &chains)
{
    const auto &adj = model.adjacency();
    std::vector<std::vector<InternalEdge>> internal(chains.size());
    std::vector<bool> member(model.numVars(), false);
    for (size_t c = 0; c < chains.size(); ++c) {
        for (uint32_t q : chains[c])
            member[q] = true;
        for (uint32_t q : chains[c])
            for (const auto &[r, w] : adj[q])
                if (member[r] && q < r)
                    internal[c].push_back({q, r, w});
        for (uint32_t q : chains[c])
            member[q] = false;
    }
    return internal;
}

Run
chainflipBaseline(const ising::IsingModel &model,
                  const std::vector<std::vector<uint32_t>> &chains,
                  const std::vector<std::vector<InternalEdge>> &internal,
                  const std::vector<double> &betas, uint32_t reads)
{
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        ising::SpinVector spins(n);
        for (auto &s : spins)
            s = rng.spin();
        for (double beta : betas) {
            for (size_t c = 0; c < chains.size(); ++c) {
                double delta = 0.0;
                for (uint32_t q : chains[c])
                    delta += model.flipDelta(spins, q);
                for (const auto &e : internal[c])
                    delta += 4.0 * e.w * spins[e.i] * spins[e.j];
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-beta * delta))
                    for (uint32_t q : chains[c])
                        spins[q] =
                            static_cast<ising::Spin>(-spins[q]);
            }
            for (uint32_t i = 0; i < n; ++i) {
                double local = model.linear(i);
                for (const auto &[j, w] : adj[i])
                    local += w * spins[j];
                double delta = -2.0 * spins[i] * local;
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-beta * delta))
                    spins[i] = static_cast<ising::Spin>(-spins[i]);
            }
        }
        r.checksum += model.energy(spins);
    }
    r.seconds = now() - t0;
    // Each chain member and each single-qubit pass is one proposal.
    size_t chain_members = 0;
    for (const auto &c : chains)
        chain_members += c.size();
    r.proposals = uint64_t{reads} * betas.size() * (chain_members + n);
    return r;
}

Run
chainflipKernel(const ising::CompiledModel &kernel,
                const std::vector<std::vector<uint32_t>> &chains,
                const std::vector<std::vector<InternalEdge>> &internal,
                const std::vector<double> &betas, uint32_t reads)
{
    const size_t n = kernel.numVars();
    ising::LocalFieldState state(kernel);
    ising::SpinVector spins(n);
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        for (auto &s : spins)
            s = rng.spin();
        state.reset(spins);
        for (double beta : betas) {
            for (size_t c = 0; c < chains.size(); ++c) {
                double delta = 0.0;
                for (uint32_t q : chains[c])
                    delta += state.flipDelta(q);
                for (const auto &e : internal[c])
                    delta += 4.0 * e.w * state.spin(e.i) *
                        state.spin(e.j);
                if (delta <= 0.0 ||
                    anneal::metropolisAccept(rng, beta * delta))
                    for (uint32_t q : chains[c])
                        state.flip(q);
            }
            for (uint32_t i = 0; i < n; ++i) {
                double delta = state.flipDelta(i);
                if (delta <= 0.0 ||
                    anneal::metropolisAccept(rng, beta * delta))
                    state.flip(i);
            }
        }
        r.checksum += kernel.energy(state.spins());
    }
    r.seconds = now() - t0;
    size_t chain_members = 0;
    for (const auto &c : chains)
        chain_members += c.size();
    r.proposals = uint64_t{reads} * betas.size() * (chain_members + n);
    return r;
}

// ---------------------------------------------------------- descent

Run
descentBaseline(const ising::IsingModel &model, uint32_t reads)
{
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        ising::SpinVector spins(n);
        for (auto &s : spins)
            s = rng.spin();
        bool improved = true;
        while (improved) {
            improved = false;
            for (uint32_t i = 0; i < n; ++i) {
                double local = model.linear(i);
                for (const auto &[j, w] : adj[i])
                    local += w * spins[j];
                double delta = -2.0 * spins[i] * local;
                if (delta < -1e-12) {
                    spins[i] = static_cast<ising::Spin>(-spins[i]);
                    improved = true;
                }
            }
            r.proposals += n;
        }
        r.checksum += model.energy(spins);
    }
    r.seconds = now() - t0;
    return r;
}

Run
descentKernel(const ising::CompiledModel &kernel, uint32_t reads)
{
    const size_t n = kernel.numVars();
    ising::LocalFieldState state(kernel);
    ising::SpinVector spins(n);
    Run r;
    const double t0 = now();
    for (uint32_t read = 0; read < reads; ++read) {
        Rng rng = Rng::streamAt(kSeed, read);
        for (auto &s : spins)
            s = rng.spin();
        state.reset(spins);
        bool improved = true;
        while (improved) {
            improved = false;
            for (uint32_t i = 0; i < n; ++i) {
                if (state.flipDelta(i) < -1e-12) {
                    state.flip(i);
                    improved = true;
                }
            }
            r.proposals += n;
        }
        r.checksum += state.energy();
    }
    r.seconds = now() - t0;
    return r;
}

// ------------------------------------------------ qbsolv candidates

/**
 * The accept test qbsolv runs once per sub-solver answer.  The old
 * path recomputed the full H(sigma) twice per candidate (before and
 * after); the new path copies the incremental state and compares
 * tracked energies.  One "proposal" here is one flipped variable of
 * the candidate move.
 */
Run
qbsolvBaseline(const ising::IsingModel &model, uint32_t candidates,
               uint32_t sub_n)
{
    const size_t n = model.numVars();
    Rng rng(kSeed);
    ising::SpinVector spins(n);
    for (auto &s : spins)
        s = rng.spin();
    anneal::greedyDescent(model, spins);
    Run r;
    const double t0 = now();
    for (uint32_t c = 0; c < candidates; ++c) {
        double before = model.energy(spins);
        ising::SpinVector candidate = spins;
        for (uint32_t k = 0; k < sub_n; ++k) {
            uint32_t v = static_cast<uint32_t>(rng.below(n));
            candidate[v] = rng.spin();
        }
        anneal::greedyDescent(model, candidate);
        if (model.energy(candidate) <= before)
            spins = std::move(candidate);
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{candidates} * sub_n;
    r.checksum = model.energy(spins);
    return r;
}

Run
qbsolvKernel(const ising::CompiledModel &kernel, uint32_t candidates,
             uint32_t sub_n)
{
    const size_t n = kernel.numVars();
    Rng rng(kSeed);
    ising::SpinVector spins(n);
    for (auto &s : spins)
        s = rng.spin();
    ising::LocalFieldState state(kernel);
    state.reset(spins);
    anneal::greedyDescent(state);
    Run r;
    const double t0 = now();
    for (uint32_t c = 0; c < candidates; ++c) {
        ising::LocalFieldState candidate = state;
        for (uint32_t k = 0; k < sub_n; ++k) {
            uint32_t v = static_cast<uint32_t>(rng.below(n));
            if (candidate.spin(v) != rng.spin())
                candidate.flip(v);
        }
        anneal::greedyDescent(candidate);
        if (candidate.energy() <= state.energy())
            state = std::move(candidate);
    }
    r.seconds = now() - t0;
    r.proposals = uint64_t{candidates} * sub_n;
    r.checksum = state.energy();
    return r;
}

// ------------------------------------------------------------ table

void reportRow(const char *name, const Run &base, const Run &kern);

/** Median-by-elapsed-time element of a set of repetitions. */
const Run &
medianRun(std::vector<Run> &runs)
{
    std::sort(runs.begin(), runs.end(),
              [](const Run &a, const Run &b) {
                  return a.seconds < b.seconds;
              });
    return runs[runs.size() / 2];
}

/**
 * Time one baseline/kernel pair.  The two sides are run back to back,
 * the pair repeated, and each side reports its median repetition:
 * single-shot timings on a busy host can drift by 10-20% between the
 * two measurements, which would show up as a phantom change in the
 * ratio.  Interleaving puts both sides under the same machine state
 * and the median discards steal-time spikes symmetrically.
 */
template <typename BaseFn, typename KernFn>
void
reportRowRepeated(const char *name, BaseFn runBase, KernFn runKern)
{
    const int reps = benchstats::smoke() ? 1 : 5;
    std::vector<Run> base_runs, kern_runs;
    for (int j = 0; j < reps; ++j) {
        base_runs.push_back(runBase());
        kern_runs.push_back(runKern());
    }
    reportRow(name, medianRun(base_runs), medianRun(kern_runs));
}

void
reportRow(const char *name, const Run &base, const Run &kern)
{
    auto mps = [](const Run &r) {
        return r.seconds > 0
            ? r.proposals / r.seconds / 1e6
            : 0.0;
    };
    double speedup =
        base.seconds > 0 && kern.seconds > 0
            ? (static_cast<double>(kern.proposals) / kern.seconds) /
                (static_cast<double>(base.proposals) / base.seconds)
            : 0.0;
    std::printf("%-10s %14.2f %14.2f %9.2fx\n", name, mps(base),
                mps(kern), speedup);
    std::string prefix = std::string("bench.kernel.") + name;
    stats::gauge(prefix + ".baseline_flips_per_sec",
                 static_cast<uint64_t>(base.proposals / base.seconds));
    stats::gauge(prefix + ".kernel_flips_per_sec",
                 static_cast<uint64_t>(kern.proposals / kern.seconds));
    stats::gauge(prefix + ".speedup_x100",
                 static_cast<uint64_t>(speedup * 100));
    benchmark::DoNotOptimize(base.checksum);
    benchmark::DoNotOptimize(kern.checksum);
}

void
printKernelTable()
{
    const Config cfg = config();
    const uint32_t m = 16; // C16: the paper's D-Wave 2000Q scale
    ising::IsingModel model = chimeraModel(m);
    const ising::CompiledModel kernel(model);
    std::printf("--- CSR Ising kernel: proposals/sec, C%u Chimera "
                "(%zu vars, %zu couplers) ---\n",
                m, model.numVars(), kernel.numEdges());
    std::printf("%-10s %14s %14s %9s\n", "sampler", "base Mprop/s",
                "kernel Mprop/s", "speedup");

    auto [b0, b1] = anneal::SimulatedAnnealer::defaultBetaRange(kernel);

    std::vector<double> sa_betas =
        betaSchedule(b0, b1, cfg.sa_sweeps);
    reportRowRepeated(
        "sa",
        [&] { return saBaseline(model, sa_betas, cfg.sa_reads); },
        [&] { return saKernel(kernel, sa_betas, cfg.sa_reads); });

    // 64 reads = exactly one packed pass; baseline = the scalar
    // per-read kernel loop, not the pre-kernel adjacency walk.
    constexpr uint32_t pk_reads = ising::PackedState::kLanes;
    reportRowRepeated(
        "packed",
        [&] { return packedScalar(kernel, sa_betas, pk_reads); },
        [&] { return packedKernel(kernel, sa_betas, pk_reads); });
    std::printf("           (packed row: 64-lane multi-spin vs scalar "
                "per-read SA, %s engine)\n",
                anneal::packedSweepEngineName());

    reportRowRepeated(
        "sqa",
        [&] {
            return sqaBaseline(model, cfg.sqa_reads, cfg.sqa_sweeps,
                               cfg.sqa_slices);
        },
        [&] {
            return sqaKernel(kernel, cfg.sqa_reads, cfg.sqa_sweeps,
                             cfg.sqa_slices);
        });

    auto chains = halfCellChains(m);
    auto internal = internalEdges(model, chains);
    std::vector<double> cf_betas =
        betaSchedule(b0, b1, cfg.cf_sweeps);
    reportRowRepeated(
        "chainflip",
        [&] {
            return chainflipBaseline(model, chains, internal,
                                     cf_betas, cfg.cf_reads);
        },
        [&] {
            return chainflipKernel(kernel, chains, internal,
                                   cf_betas, cfg.cf_reads);
        });

    reportRowRepeated(
        "descent",
        [&] { return descentBaseline(model, cfg.descent_reads); },
        [&] { return descentKernel(kernel, cfg.descent_reads); });

    reportRowRepeated(
        "qbsolv",
        [&] {
            return qbsolvBaseline(model, cfg.qb_candidates,
                                  cfg.qb_sub_n);
        },
        [&] {
            return qbsolvKernel(kernel, cfg.qb_candidates,
                                cfg.qb_sub_n);
        });

    std::printf("(baselines replay the pre-kernel adjacency-walk "
                "loops; qbsolv rows measure the\n candidate accept "
                "path, where the old code recomputed the full model "
                "energy)\n\n");
}

// ------------------------------------------- google-benchmark cases

void
BM_SaSweepBaseline(benchmark::State &state)
{
    ising::IsingModel model = chimeraModel(8);
    const auto &adj = model.adjacency();
    const size_t n = model.numVars();
    Rng rng(kSeed);
    ising::SpinVector spins(n);
    for (auto &s : spins)
        s = rng.spin();
    const double beta = 1.0;
    for (auto _ : state) {
        for (uint32_t i = 0; i < n; ++i) {
            double local = model.linear(i);
            for (const auto &[j, w] : adj[i])
                local += w * spins[j];
            double delta = -2.0 * spins[i] * local;
            if (delta <= 0.0 ||
                rng.uniform() < std::exp(-beta * delta))
                spins[i] = static_cast<ising::Spin>(-spins[i]);
        }
        benchmark::DoNotOptimize(spins.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SaSweepBaseline);

void
BM_SaSweepKernel(benchmark::State &state)
{
    ising::IsingModel model = chimeraModel(8);
    const ising::CompiledModel kernel(model);
    const size_t n = kernel.numVars();
    Rng rng(kSeed);
    ising::SpinVector spins(n);
    for (auto &s : spins)
        s = rng.spin();
    ising::LocalFieldState lfs(kernel);
    lfs.reset(spins);
    const double beta = 1.0;
    for (auto _ : state) {
        for (uint32_t i = 0; i < n; ++i) {
            const double delta = lfs.flipDelta(i);
            if (delta <= 0.0) {
                lfs.flip(i);
                continue;
            }
            const double bd = beta * delta;
            if (bd >= kMaxExpArg)
                continue;
            if (anneal::metropolisAccept(rng, bd))
                lfs.flip(i);
        }
        benchmark::DoNotOptimize(lfs.energy());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SaSweepKernel);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("ising_kernel");
    printKernelTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
