/**
 * @file
 * Technology mapping onto the Table 5 cell set.
 *
 * The synthesizer emits only simple gates (NOT/AND/OR/XOR/MUX/DFF).
 * This pass fuses inverter trees into the complex ABC cells the paper's
 * standard-cell library provides (NAND, NOR, XNOR, AOI3/OAI3/AOI4/OAI4),
 * trading "reduced qubit count at the expense of increased compilation
 * time" (Section 4.3.2).
 */

#ifndef QAC_NETLIST_TECHMAP_H
#define QAC_NETLIST_TECHMAP_H

#include <cstddef>

#include "qac/netlist/netlist.h"

namespace qac::netlist {

struct TechMapOptions
{
    /** Fuse NOT(AND)/NOT(OR)/NOT(XOR) into NAND/NOR/XNOR. */
    bool fuse_inverters = true;
    /** Fuse AND-OR-invert / OR-AND-invert trees into AOIx/OAIx. */
    bool use_complex_cells = true;
};

/** Apply the mapping in place. @return number of gates fused away. */
size_t techMap(Netlist &nl, const TechMapOptions &opts = {});

} // namespace qac::netlist

#endif // QAC_NETLIST_TECHMAP_H
