/**
 * @file
 * Truth-table -> penalty-Hamiltonian synthesis (paper, Section 4.3.2).
 *
 * "Our approach is to set up and solve a system of inequalities (using,
 * e.g., MiniZinc)" — Tables 2 and 4.  Each full truth-table row yields
 * one constraint on the h and J coefficients: valid rows are pinned to
 * the (unknown) ground energy k, invalid rows must exceed it.  When the
 * system is unsolvable (XOR, XNOR: the only unsolvable 2-input/1-output
 * functions [Whitfield et al.]), ancilla columns are appended to the
 * truth table and their values searched over until a solvable system is
 * found (Table 3).
 *
 * We solve the system with an in-repo simplex LP (util/simplex.h),
 * maximizing the valid/invalid energy gap subject to the hardware
 * coefficient ranges — the same objective the paper describes for
 * choosing Table 5's entries ("honor the hardware-imposed coefficient
 * ranges while maximizing the gap").
 */

#ifndef QAC_CELLS_SYNTHESIZER_H
#define QAC_CELLS_SYNTHESIZER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "qac/cells/gate.h"
#include "qac/cells/stdcell.h"
#include "qac/ising/model.h"

namespace qac::cells {

/** A single-output Boolean function as an explicit truth table. */
struct TruthTable
{
    size_t numInputs = 0;
    /** output[i] = f(inputs) where bit k of i is input k. */
    std::vector<bool> output;

    /** Truth table of a library gate (combinational only). */
    static TruthTable forGate(GateType type);
};

/** Knobs for synthesizeCell(). */
struct SynthesisOptions
{
    size_t maxAncillas = 2;
    /** Coefficient box the LP must respect (hardware ranges). */
    ising::CoefficientRange range{};
    /** Required valid/invalid energy gap for a pattern to count. */
    double minGap = 1e-6;
    /** Seed for the randomized 2-ancilla pattern search. */
    uint64_t seed = 1;
    /** Random pattern budget when exhaustive search is too large. */
    size_t maxRandomPatterns = 512;
};

/** Result of a successful synthesis. */
struct SynthesizedCell
{
    /** Spin order: [Y, input 0..n-1, ancilla 0..a-1]. */
    ising::IsingModel H;
    size_t numAncillas = 0;
    double groundEnergy = 0.0;
    double gap = 0.0;
    /** ancillaPattern[v] = ancilla bits designated for valid row v
     *  (valid rows enumerated in input order). */
    std::vector<uint32_t> ancillaPattern;
};

/**
 * Solve the inequality system for one specific ancilla augmentation.
 * @p pattern has one entry per input combination (the designated ancilla
 * bits on that valid row).  Returns nullopt when infeasible — e.g. XOR
 * with num_ancillas == 0 (Table 4's premise).
 */
std::optional<SynthesizedCell>
synthesizeWithPattern(const TruthTable &tt, size_t num_ancillas,
                      const std::vector<uint32_t> &pattern,
                      const SynthesisOptions &opts = {});

/**
 * Search ancilla counts 0..maxAncillas (and, per count, augmentation
 * patterns) for the feasible cell with the largest gap.
 */
std::optional<SynthesizedCell>
synthesizeCell(const TruthTable &tt, const SynthesisOptions &opts = {});

/**
 * Count how many of the 2^(v*num_ancillas) augmentation patterns give a
 * solvable system (paper: 8 of the 16 one-ancilla XOR augmentations).
 * Only valid when the pattern space is exhaustively enumerable.
 */
size_t countSolvablePatterns(const TruthTable &tt, size_t num_ancillas,
                             const SynthesisOptions &opts = {});

/** Convert a synthesis result into a library-style CellHamiltonian. */
CellHamiltonian toCellHamiltonian(GateType type,
                                  const SynthesizedCell &cell);

} // namespace qac::cells

#endif // QAC_CELLS_SYNTHESIZER_H
