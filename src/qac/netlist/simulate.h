/**
 * @file
 * Event-free levelized netlist simulation.
 *
 * Used three ways: (1) as the reference semantics the bit-blaster is
 * tested against, (2) to verify annealer outputs by running NP-verifier
 * programs forward on classical hardware (Section 5.2: "we can easily
 * check a result by running the code forward"), and (3) inside tests to
 * cross-check Ising ground states against circuit behaviour.
 *
 * Values are four-state (sim::Logic).  Input-port nets start X and
 * flip-flops power up X, so reading an output that depends on an input
 * the caller never set — or on an un-reset flop — is a hard error
 * instead of a silent 0.  The gate semantics are the shared 4-state
 * tables in qac/sim/logic.h (the event-driven simulator evaluates
 * through the exact same functions).
 */

#ifndef QAC_NETLIST_SIMULATE_H
#define QAC_NETLIST_SIMULATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "qac/netlist/netlist.h"
#include "qac/sim/logic.h"

namespace qac::netlist {

/** Four-valued levelized simulator over one Netlist. */
class Simulator
{
  public:
    explicit Simulator(const Netlist &nl);

    /** Set an input port from the low bits of @p value. */
    void setInput(const std::string &port, uint64_t value);

    /** Set an input port bit-by-bit (bits[0] = LSB). */
    void setInputBits(const std::string &port,
                      const std::vector<bool> &bits);

    /** Propagate through combinational logic (DFF state unchanged). */
    void eval();

    /** Latch every DFF (capture D into state), then eval(). */
    void step();

    /** Reset all DFF state to 0 and re-eval(). */
    void reset();

    /**
     * Read an output (or any) port as an integer (width <= 64).
     * Fatal if any bit is X/Z — an unset input or uninitialized flop
     * upstream; call setInput / reset first.
     */
    uint64_t output(const std::string &port) const;

    std::vector<bool> outputBits(const std::string &port) const;

    /** True when every bit of @p port is 0/1. */
    bool portKnown(const std::string &port) const;

    /** Two-valued net read; fatal when the net is X/Z. */
    bool
    netValue(NetId id) const
    {
        return requireKnown(id);
    }

    /** Four-valued net read (never fatal). */
    sim::Logic netLogic(NetId id) const { return values_[id]; }

  private:
    const Netlist &nl_;
    std::vector<sim::Logic> values_;  ///< per-net current value
    std::vector<sim::Logic> dff_state_; ///< per-gate state (DFFs only)
    std::vector<size_t> topo_;        ///< combinational gates, levelized

    void buildTopoOrder();
    bool requireKnown(NetId id) const;
    const Port &port(const std::string &name, PortDir dir) const;
};

} // namespace qac::netlist

#endif // QAC_NETLIST_SIMULATE_H
