/**
 * @file
 * Quickstart: compile the paper's Figure 2 program and run it both
 * forward (inputs -> outputs) and backward (outputs -> inputs).
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "qac/core/compiler.h"
#include "qac/core/program.h"

namespace {

const char *kSource = R"(
// Figure 2(a): c = a+b when s is 1, a-b when s is 0.
module mux_add_sub (s, a, b, c);
  input s, a, b;
  output [1:0] c;
  assign c = s ? a+b : a-b;
endmodule
)";

} // namespace

int
main()
{
    using namespace qac;

    // 1. Compile Verilog -> netlist -> EDIF -> QMASM -> Ising model.
    core::CompileOptions opts;
    opts.verilogOpts().top = "mux_add_sub";
    core::CompileResult compiled = core::compile(kSource, opts);

    std::printf("compiled %zu lines of Verilog into:\n",
                compiled.stats.source_lines);
    std::printf("  %5zu lines of EDIF\n", compiled.stats.edif_lines);
    std::printf("  %5zu lines of QMASM (+ %zu-line stdcell library)\n",
                compiled.stats.qmasm_lines,
                compiled.stats.stdcell_lines);
    std::printf("  %5zu logical variables, %zu terms\n\n",
                compiled.stats.logical_vars,
                compiled.stats.logical_terms);

    core::Executable prog(std::move(compiled));

    // 2. Forward: pin the inputs, anneal, read the output.
    prog.pinPort("s", 1);
    prog.pinPort("a", 1);
    prog.pinPort("b", 1);
    auto fwd = prog.run();
    if (fwd.hasValid())
        std::printf("forward:  s=1 a=1 b=1  ->  c = %llu (expect 2)\n",
                    static_cast<unsigned long long>(
                        prog.portValue(fwd.bestValid(), "c")));

    // 3. Backward: pin the output, solve for the inputs (Section
    //    4.3.6: "provide outputs and solve for inputs").
    prog.clearPins();
    prog.pinDirective("c[1:0] := 10"); // c = 2
    prog.pinDirective("s := true");
    auto bwd = prog.run();
    if (bwd.hasValid()) {
        const auto &c = bwd.bestValid();
        std::printf("backward: s=1 c=2      ->  a=%d b=%d (expect 1 1)\n",
                    static_cast<int>(c.values.at("a")),
                    static_cast<int>(c.values.at("b")));
    }

    // 4. The classical cross-check (Section 5.2's verify loop).
    auto out = prog.evaluate({{"s", 1}, {"a", 1}, {"b", 1}});
    std::printf("classical check: c = %llu\n",
                static_cast<unsigned long long>(out.at("c")));
    return 0;
}
