/**
 * @file
 * qmad — the long-lived annealing service.
 *
 *   qmad --socket /run/qac.sock --serve-dir objs/ --preload
 *   qmad --socket /tmp/q.sock design.qo other.qo --queue-depth 64
 *
 * Serves compiled .qo objects over a unix socket: clients (`qma
 * client`, bench_service, anything speaking service/wire.h) address
 * an object by digest, attach pins and solver parameters, and get
 * back the same bytes `qma run` would print locally.  This is the
 * compile-once/pin-many economics of Section 5.2 as a resident
 * process: objects load once, stay LRU-cached, and concurrent
 * requests against the same object batch onto the shared thread
 * pool.
 *
 * SIGTERM/SIGINT triggers a graceful drain: stop accepting, finish
 * every admitted request, flush replies, exit 0.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "qac/anneal/sampler.h"
#include "qac/exec/exec.h"
#include "qac/service/server.h"
#include "qac/util/logging.h"
#include "qac/util/strings.h"
#include "tools/tool_options.h"

namespace {

using namespace qac;

struct Args
{
    std::string socket;
    std::string serve_dir;
    std::vector<std::string> objects;
    bool preload = false; ///< load every object before listening
    service::StoreOptions store;
    service::CoreOptions core;
    tools::CommonOptions common;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket <path> [<design.qo>...] [options]\n"
        "  --socket <path>       unix socket to listen on (required)\n"
        "  --serve-dir <dir>     register every *.qo in <dir>\n"
        "  --preload             load all objects before listening\n"
        "  --max-objects <N>     resident executables (LRU beyond; "
        "default 8)\n"
        "  --queue-depth <N>     admission queue bound (default 256)\n"
        "  --max-batch <N>       same-object requests coalesced per "
        "dispatch (default 16)\n"
        "  --max-threads <N>     cap per-request threads (0 = honor "
        "request)\n"
        "%s",
        argv0, tools::commonUsage());
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (tools::parseCommonFlag(args.common, argc, argv, i))
            continue;
        if (a == "--socket")
            args.socket = need(i);
        else if (a == "--serve-dir")
            args.serve_dir = need(i);
        else if (a == "--preload")
            args.preload = true;
        else if (a == "--max-objects")
            args.store.max_loaded = static_cast<size_t>(
                tools::parseUint("--max-objects", need(i)));
        else if (a == "--queue-depth")
            args.core.queue_depth = static_cast<size_t>(
                tools::parseUint("--queue-depth", need(i)));
        else if (a == "--max-batch")
            args.core.max_batch = static_cast<size_t>(
                tools::parseUint("--max-batch", need(i)));
        else if (a == "--max-threads")
            args.core.threads = static_cast<uint32_t>(tools::parseUint(
                "--max-threads", need(i), UINT32_MAX));
        else if (a == "--help" || a == "-h")
            usage(argv[0]);
        else if (!a.empty() && a[0] == '-')
            usage(argv[0]);
        else
            args.objects.push_back(a);
    }
    if (args.socket.empty())
        usage(argv[0]);
    if (args.objects.empty() && args.serve_dir.empty())
        fatal("nothing to serve: pass .qo files or --serve-dir");
    return args;
}

// Self-pipe: the handler only writes one byte; the main thread owns
// the actual drain so no daemon state is touched in signal context.
int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    ssize_t ignored = ::write(g_signal_pipe[1], "x", 1);
    (void)ignored;
}

int
runQmad(Args &args)
{
    const bool chatty = args.common.verbosity > 0;

    service::ServerOptions opts;
    opts.socket_path = args.socket;
    opts.store = args.store;
    opts.core = args.core;
    service::Server server(std::move(opts));

    if (!args.serve_dir.empty())
        server.store().registerDir(args.serve_dir);
    for (const auto &path : args.objects) {
        std::string error;
        if (!server.store().registerFile(path, &error))
            fatal("%s", error.c_str());
    }
    if (server.store().registered() == 0)
        fatal("no servable objects found");

    if (args.preload)
        for (const auto &info : server.store().list())
            server.store().acquire(info.digest);

    if (::pipe(g_signal_pipe) < 0)
        fatal("cannot create signal pipe");
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::string error;
    if (!server.listen(&error))
        fatal("%s", error.c_str());
    if (chatty) {
        for (const auto &info : server.store().list())
            service::printObjectLine(stdout, info.name,
                                     info.logical_vars,
                                     info.logical_terms,
                                     info.embedded);
        std::printf("qmad: serving %zu object(s) on %s\n",
                    server.store().registered(),
                    server.socketPath().c_str());
        std::fflush(stdout);
    }

    // Block until a signal lands; EINTR just retries.
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    if (chatty)
        std::printf("qmad: draining (%zu queued)\n",
                    server.core().queued());
    server.drain();
    if (chatty)
        std::printf("qmad: served %llu request(s) over %llu "
                    "connection(s), %llu batched\n",
                    static_cast<unsigned long long>(
                        server.core().completed()),
                    static_cast<unsigned long long>(
                        server.connectionsAccepted()),
                    static_cast<unsigned long long>(
                        server.core().batchedRequests()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    int ret;
    try {
        args = parseArgs(argc, argv);
        tools::applyCommonOptions(args.common);
        args.common.manifest = telemetry::Manifest::make("qmad");
        args.common.manifest.input =
            !args.serve_dir.empty() ? args.serve_dir
            : !args.objects.empty() ? args.objects.front()
                                    : "";
        args.common.manifest.threads = static_cast<uint32_t>(
            exec::resolveThreads(args.common.threads));
        args.common.manifest.param(
            "queue_depth", uint64_t{args.core.queue_depth});
        args.common.manifest.param("max_batch",
                                   uint64_t{args.core.max_batch});
        args.common.manifest.param("max_objects",
                                   uint64_t{args.store.max_loaded});
        ret = runQmad(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "qmad: %s\n", e.what());
        ret = 2;
    }
    tools::finishCommonOptions(args.common);
    return ret;
}
