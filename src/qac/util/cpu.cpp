#include "qac/util/cpu.h"

#include <cstdlib>

namespace qac::util {

namespace {

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0';
}

bool
probeAvx2()
{
    if (envSet("QAC_NO_AVX2"))
        return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
probeAvx512()
{
    // QAC_NO_AVX2 collapses the whole vector ladder to scalar.
    if (envSet("QAC_NO_AVX512") || envSet("QAC_NO_AVX2"))
        return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
#else
    return false;
#endif
}

} // namespace

bool
avx2Supported()
{
    static const bool supported = probeAvx2();
    return supported;
}

bool
avx512Supported()
{
    static const bool supported = probeAvx512();
    return supported;
}

} // namespace qac::util
