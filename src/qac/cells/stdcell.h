/**
 * @file
 * The standard-cell library: each gate as a quadratic pseudo-Boolean
 * penalty function (paper, Table 5).
 *
 * A cell Hamiltonian is minimized exactly on assignments that form a
 * valid input/output relation of the gate; ancilla spins are minimized
 * over (Section 4.3.2).  This header provides
 *   - the paper's literal Table 5 coefficients (paperCell), and
 *   - the verified library used by the compiler (standardCell), which
 *     falls back to a composed construction (Section 4.3.5 style) for
 *     any literal entry that fails exhaustive verification.
 */

#ifndef QAC_CELLS_STDCELL_H
#define QAC_CELLS_STDCELL_H

#include <string>
#include <vector>

#include "qac/cells/gate.h"
#include "qac/ising/model.h"

namespace qac::cells {

/** A gate rendered as a penalty Hamiltonian over named spins. */
struct CellHamiltonian
{
    GateType type = GateType::NOT;
    /**
     * varNames[i] names spin i of H.  The output port ("Y"/"Q") and all
     * input ports of gateInfo(type) appear exactly once; any name
     * beginning with '$' is an ancilla (internal) spin.
     */
    std::vector<std::string> varNames;
    ising::IsingModel H;

    /** Filled in by verifyCell(). */
    double groundEnergy = 0.0;
    /** Energy of the lowest invalid row minus groundEnergy. */
    double gap = 0.0;

    /** Index of @p name in varNames. Fatal if absent. */
    size_t varIndex(const std::string &name) const;

    size_t numAncillas() const;
};

/**
 * Exhaustively check that @p cell is a correct penalty function for its
 * gate: all valid (output, inputs) rows reach the same minimum k when
 * minimized over ancillas, and every invalid row stays strictly above k.
 * On success fills cell.groundEnergy and cell.gap.
 *
 * @param error if non-null, receives a diagnostic on failure
 */
bool verifyCell(CellHamiltonian &cell, std::string *error = nullptr);

/** The literal Table 5 entry for @p type (not yet verified). */
CellHamiltonian paperCell(GateType type);

/**
 * Build @p type by summing simpler verified cells with internal nets
 * (the Section 4.3.5 composition rule), e.g.
 * AOI4 = NOR(AND(A,B), AND(C,D)) with the two AND outputs as ancillas.
 * Only defined for XNOR, MUX, AOI3, OAI3, AOI4, OAI4.
 */
CellHamiltonian composedCell(GateType type);

/**
 * The verified library entry for @p type, cached for the process
 * lifetime.  BUF has no cell (it lowers to a chain) and is rejected.
 */
const CellHamiltonian &standardCell(GateType type);

} // namespace qac::cells

#endif // QAC_CELLS_STDCELL_H
