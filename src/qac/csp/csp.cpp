#include "qac/csp/csp.h"

#include <algorithm>
#include <bit>

#include "qac/util/logging.h"
#include "qac/util/rng.h"

namespace qac::csp {

uint32_t
Model::addVariable(const std::string &name, int lo, int hi)
{
    if (hi < lo || hi - lo >= 64)
        fatal("csp: domain [%d, %d] unsupported", lo, hi);
    vars_.push_back({name, lo, hi});
    return static_cast<uint32_t>(vars_.size() - 1);
}

void
Model::notEqual(uint32_t a, uint32_t b)
{
    cons_.push_back({ConKind::NotEqual, a, b, 0});
}

void
Model::equal(uint32_t a, uint32_t b)
{
    cons_.push_back({ConKind::Equal, a, b, 0});
}

void
Model::assign(uint32_t a, int value)
{
    cons_.push_back({ConKind::Assign, a, a, value});
}

const std::string &
Model::varName(uint32_t v) const
{
    return vars_[v].name;
}

uint32_t
Model::varByName(const std::string &name) const
{
    for (uint32_t v = 0; v < vars_.size(); ++v)
        if (vars_[v].name == name)
            return v;
    fatal("csp: no variable named '%s'", name.c_str());
}

namespace {

/** Search state: domains as bitmasks relative to each var's lo. */
class Search
{
  public:
    Search(const Model &model, const Solver::Params &params)
        : model_(model), params_(params),
          rng_(params.seed ? params.seed : 1)
    {
        domains_.reserve(model.numVars());
        for (const auto &v : model.vars()) {
            int width = v.hi - v.lo + 1;
            domains_.push_back(width == 64
                                   ? ~uint64_t{0}
                                   : (uint64_t{1} << width) - 1);
        }
        // Adjacency: constraints touching each variable.
        touching_.resize(model.numVars());
        for (size_t c = 0; c < model.cons().size(); ++c) {
            const auto &con = model.cons()[c];
            touching_[con.a].push_back(c);
            if (con.b != con.a)
                touching_[con.b].push_back(c);
        }
        // Apply Assign constraints up front.
        for (const auto &con : model.cons()) {
            if (con.kind == Model::ConKind::Assign) {
                int off = con.value - model.vars()[con.a].lo;
                uint64_t mask =
                    (off >= 0 && off < 64) ? (uint64_t{1} << off) : 0;
                domains_[con.a] &= mask;
            }
        }
    }

    uint64_t nodes() const { return nodes_; }

    /**
     * Enumerate solutions; invokes @p sink per solution, stops when the
     * sink returns false or the node budget runs out.
     */
    template <typename Sink>
    bool
    enumerate(Sink &&sink)
    {
        // Propagate from any variable that starts out singleton (e.g.
        // via Assign constraints) before searching; otherwise a fully
        // pre-assigned model would report a "solution" unchecked.
        std::vector<std::pair<uint32_t, uint64_t>> root_trail;
        for (uint32_t v = 0; v < domains_.size(); ++v) {
            if (domains_[v] == 0)
                return true; // trivially unsatisfiable
            if (std::popcount(domains_[v]) == 1 &&
                !propagate(v, root_trail))
                return true;
        }
        return descend(sink);
    }

  private:
    const Model &model_;
    const Solver::Params &params_;
    Rng rng_;
    std::vector<uint64_t> domains_;
    std::vector<std::vector<size_t>> touching_;
    uint64_t nodes_ = 0;

    bool
    propagate(uint32_t var, std::vector<std::pair<uint32_t, uint64_t>>
                                &trail)
    {
        // Forward checking from a now-singleton variable.
        uint64_t d = domains_[var];
        int value_off = std::countr_zero(d);
        for (size_t ci : touching_[var]) {
            const auto &con = model_.cons()[ci];
            if (con.kind == Model::ConKind::Assign)
                continue;
            uint32_t other = (con.a == var) ? con.b : con.a;
            if (other == var)
                continue;
            int value = model_.vars()[var].lo + value_off;
            int other_off = value - model_.vars()[other].lo;
            uint64_t bit = (other_off >= 0 && other_off < 64)
                               ? (uint64_t{1} << other_off)
                               : 0;
            uint64_t nd = domains_[other];
            if (con.kind == Model::ConKind::NotEqual)
                nd &= ~bit;
            else
                nd &= bit;
            if (nd != domains_[other]) {
                trail.emplace_back(other, domains_[other]);
                domains_[other] = nd;
                if (nd == 0)
                    return false;
                if (std::popcount(nd) == 1 && !propagate(other, trail))
                    return false;
            }
        }
        return true;
    }

    template <typename Sink>
    bool
    descend(Sink &&sink)
    {
        if (++nodes_ > params_.max_nodes)
            return false;
        // MRV: smallest unassigned domain (popcount > 1).
        uint32_t pick = UINT32_MAX;
        int best = 65;
        for (uint32_t v = 0; v < domains_.size(); ++v) {
            int pc = std::popcount(domains_[v]);
            if (pc > 1 && pc < best) {
                best = pc;
                pick = v;
            }
        }
        if (pick == UINT32_MAX) {
            // All singleton: report.
            Solution sol;
            sol.values.resize(domains_.size());
            for (uint32_t v = 0; v < domains_.size(); ++v)
                sol.values[v] = model_.vars()[v].lo +
                    std::countr_zero(domains_[v]);
            return sink(sol);
        }

        // Value order (optionally randomized).
        std::vector<int> offsets;
        uint64_t d = domains_[pick];
        while (d) {
            offsets.push_back(std::countr_zero(d));
            d &= d - 1;
        }
        if (params_.seed)
            rng_.shuffle(offsets);

        for (int off : offsets) {
            std::vector<std::pair<uint32_t, uint64_t>> trail;
            trail.emplace_back(pick, domains_[pick]);
            domains_[pick] = uint64_t{1} << off;
            bool ok = propagate(pick, trail);
            if (ok && !descend(sink))
                return false;
            for (auto it = trail.rbegin(); it != trail.rend(); ++it)
                domains_[it->first] = it->second;
        }
        return true;
    }
};

} // namespace

std::optional<Solution>
Solver::solve(const Model &model)
{
    Search search(model, params_);
    std::optional<Solution> found;
    search.enumerate([&](const Solution &s) {
        found = s;
        return false; // stop at the first solution
    });
    nodes_ = search.nodes();
    return found;
}

size_t
Solver::countSolutions(const Model &model, size_t limit)
{
    Search search(model, params_);
    size_t count = 0;
    search.enumerate([&](const Solution &) {
        ++count;
        return count < limit;
    });
    nodes_ = search.nodes();
    return count;
}

} // namespace qac::csp
