/**
 * @file
 * Content hashing for the artifact subsystem (and anyone else who
 * needs a stable digest of structured data).
 *
 * The engine is 64-bit FNV-1a: byte-at-a-time, allocation-free, and —
 * crucially for on-disk cache keys — defined purely in terms of the
 * byte stream fed to it, so digests are identical across platforms as
 * long as callers feed platform-independent bytes.  The Hasher
 * helpers therefore serialize multi-byte values little-endian and
 * length-prefix strings (so update("ab"), update("c") never collides
 * with update("a"), update("bc")).
 */

#ifndef QAC_UTIL_HASH_H
#define QAC_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace qac::util {

/** FNV-1a 64-bit over a raw byte range. */
uint64_t fnv1a64(const void *data, size_t size);

/** FNV-1a 64-bit over the characters of @p s (no length prefix). */
uint64_t fnv1a64(std::string_view s);

/** 16 lower-case hex digits for @p digest (cache file names). */
std::string hexDigest(uint64_t digest);

/** Streaming FNV-1a hasher over a canonical byte encoding. */
class Hasher
{
  public:
    Hasher &bytes(const void *data, size_t size);

    Hasher &u8(uint8_t v) { return bytes(&v, 1); }
    Hasher &u32(uint32_t v);          ///< little-endian
    Hasher &u64(uint64_t v);          ///< little-endian
    Hasher &f64(double v);            ///< IEEE-754 bit pattern, LE

    /** Length-prefixed (u64) string contents. */
    Hasher &str(std::string_view s);

    uint64_t digest() const { return state_; }

  private:
    uint64_t state_ = 0xcbf29ce484222325ULL; ///< FNV offset basis
};

} // namespace qac::util

#endif // QAC_UTIL_HASH_H
