/**
 * @file
 * Load generator for the qmad serving layer (DESIGN.md §12).
 *
 * Spins up an in-process service::Server on an ephemeral unix socket,
 * registers a compiled multiplier, and drives it two ways:
 *
 *  - a latency/throughput phase: 8 concurrent clients issuing
 *    synchronous requests, reporting p50/p99 latency and aggregate
 *    QPS (the numbers land in BENCH_service.json as gauges);
 *
 *  - a drain phase: 8 clients pipeline requests, the server drains
 *    mid-conversation, and every *accepted* request must still get
 *    its reply — the redesign's no-drop acceptance criterion.
 *
 * QAC_BENCH_SMOKE shrinks the request counts to a seconds-scale pass
 * over the same code path.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "qac/core/compiler.h"
#include "qac/service/client.h"
#include "qac/service/request.h"
#include "qac/service/server.h"
#include "qac/stats/registry.h"
#include "qac/util/strings.h"

#include "bench_stats.h"

namespace {

using namespace qac;

namespace fs = std::filesystem;

std::string
multiplierSource(unsigned bits)
{
    return format("module mult (A, B, C);\n"
                  "  input [%u:0] A, B;\n"
                  "  output [%u:0] C;\n"
                  "  assign C = A * B;\n"
                  "endmodule\n",
                  bits - 1, 2 * bits - 1);
}

core::CompileResult
compileMult()
{
    core::CompileOptions opts;
    opts.verilogOpts().top = "mult";
    return core::compile(multiplierSource(benchstats::smoke() ? 2 : 3),
                         opts);
}

std::string
ephemeralSocket(const char *tag)
{
    return (fs::temp_directory_path() /
            format("qac-bench-service-%s.%d.sock", tag,
                   static_cast<int>(::getpid())))
        .string();
}

service::SampleRequest
loadRequest(const std::string &digest, uint64_t seed, uint64_t id)
{
    service::SampleRequest req;
    req.object_digest = digest;
    req.solver = "sa";
    req.common.num_reads = benchstats::smoke() ? 16 : 64;
    req.common.seed = seed;
    req.sweeps = benchstats::smoke() ? 32 : 128;
    req.request_id = id;
    return req;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t at = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[at];
}

constexpr size_t kClients = 8;

/** Phase 1: concurrent synchronous load; false on any failure. */
bool
runLatencyPhase(const std::string &digest, const std::string &sock)
{
    const size_t per_client = benchstats::smoke() ? 6 : 50;
    const size_t total = kClients * per_client;

    std::vector<std::vector<double>> latencies(kClients);
    std::atomic<size_t> ok{0};
    auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            service::Client client;
            std::string error;
            if (!client.connect(sock, &error)) {
                std::fprintf(stderr, "client %zu: %s\n", c,
                             error.c_str());
                return;
            }
            for (size_t i = 0; i < per_client; ++i) {
                auto rt0 = std::chrono::steady_clock::now();
                service::SampleResult res;
                auto code = client.call(
                    loadRequest(digest, 1000 + c, i + 1), &res,
                    &error);
                auto rt1 = std::chrono::steady_clock::now();
                if (code != service::ErrorCode::Ok) {
                    std::fprintf(stderr, "client %zu: %s (%s)\n", c,
                                 service::errorCodeName(code),
                                 error.c_str());
                    return;
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(rt1 -
                                                              rt0)
                        .count());
                ok.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    auto t1 = std::chrono::steady_clock::now();

    std::vector<double> all;
    for (const auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    double qps = wall_s > 0 ? ok.load() / wall_s : 0;
    double p50 = percentile(all, 0.50);
    double p99 = percentile(all, 0.99);

    std::printf("--- service: %zu clients x %zu requests ---\n",
                kClients, per_client);
    std::printf("%10s %12s %12s %10s\n", "ok", "p50 (us)", "p99 (us)",
                "QPS");
    std::printf("%7zu/%zu %12.0f %12.0f %10.1f\n", ok.load(), total,
                p50, p99, qps);

    stats::gauge("bench.service.clients", kClients);
    stats::gauge("bench.service.requests", total);
    stats::gauge("bench.service.p50_us",
                 static_cast<uint64_t>(p50));
    stats::gauge("bench.service.p99_us",
                 static_cast<uint64_t>(p99));
    stats::gauge("bench.service.qps", static_cast<uint64_t>(qps));

    if (ok.load() != total) {
        std::fprintf(stderr, "bench_service: %zu/%zu requests "
                             "failed\n",
                     total - ok.load(), total);
        return false;
    }
    return true;
}

/** Phase 2: graceful drain under pipelined load; false on a drop. */
bool
runDrainPhase(const core::CompileResult &compiled)
{
    std::string sock = ephemeralSocket("drain");
    service::ServerOptions opts;
    opts.socket_path = sock;
    service::Server server(std::move(opts));
    std::string digest = server.store().registerResult(
        core::CompileResult(compiled), "mult");
    std::string error;
    if (!server.listen(&error)) {
        std::fprintf(stderr, "bench_service: %s\n", error.c_str());
        return false;
    }

    const size_t per_client = benchstats::smoke() ? 4 : 16;
    std::atomic<size_t> senders_done{0};
    std::atomic<uint64_t> replies_ok{0};
    std::atomic<uint64_t> replies_rejected{0};

    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            service::Client client;
            if (!client.connect(sock)) {
                senders_done.fetch_add(1);
                return;
            }
            size_t sent = 0;
            for (size_t i = 0; i < per_client; ++i)
                if (client.send(loadRequest(digest, 2000 + c, i + 1)))
                    ++sent;
            senders_done.fetch_add(1);
            // Read until the drained server hangs up: every accepted
            // request must have produced a Result (or typed Error)
            // frame by then.
            for (;;) {
                service::SampleResult res;
                auto code = client.receive(&res);
                if (code == service::ErrorCode::Ok)
                    replies_ok.fetch_add(1);
                else if (code == service::ErrorCode::Disconnected)
                    break;
                else
                    replies_rejected.fetch_add(1);
            }
        });

    while (senders_done.load() < kClients)
        std::this_thread::yield();
    server.drain();
    for (auto &t : threads)
        t.join();

    uint64_t completed = server.core().completed();
    std::printf("--- service: drain under load ---\n");
    std::printf("%12s %12s %12s %12s\n", "accepted", "replied",
                "rejected", "batched");
    std::printf("%12llu %12llu %12llu %12llu\n",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(replies_ok.load()),
                static_cast<unsigned long long>(
                    replies_rejected.load()),
                static_cast<unsigned long long>(
                    server.core().batchedRequests()));
    stats::gauge("bench.service.drain.accepted", completed);
    stats::gauge("bench.service.drain.replied", replies_ok.load());
    stats::gauge("bench.service.drain.rejected",
                 replies_rejected.load());
    fs::remove(sock);

    // The no-drop criterion: every accepted request's reply reached
    // its client through the drain.
    if (replies_ok.load() != completed) {
        std::fprintf(stderr, "bench_service: drain dropped %lld "
                             "accepted request(s)\n",
                     static_cast<long long>(completed) -
                         static_cast<long long>(replies_ok.load()));
        return false;
    }
    return true;
}

// Google-benchmark half: steady-state single-client loopback latency
// (skipped by bench_smoke.sh's --benchmark_filter='NONE').
void
BM_LoopbackCall(benchmark::State &state)
{
    std::string sock = ephemeralSocket("bm");
    service::ServerOptions opts;
    opts.socket_path = sock;
    service::Server server(std::move(opts));
    std::string digest =
        server.store().registerResult(compileMult(), "mult");
    std::string error;
    if (!server.listen(&error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    service::Client client;
    if (!client.connect(sock, &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    uint64_t id = 0;
    for (auto _ : state) {
        service::SampleResult res;
        auto code =
            client.call(loadRequest(digest, 1, ++id), &res, &error);
        if (code != service::ErrorCode::Ok) {
            state.SkipWithError(error.c_str());
            return;
        }
        benchmark::DoNotOptimize(res);
    }
    client.close();
    server.drain();
    fs::remove(sock);
}
BENCHMARK(BM_LoopbackCall)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    qac::benchstats::Scope bench_scope("service");

    auto compiled = compileMult();

    std::string sock = ephemeralSocket("load");
    bool ok;
    {
        service::ServerOptions opts;
        opts.socket_path = sock;
        service::Server server(std::move(opts));
        server.store().registerResult(core::CompileResult(compiled),
                                      "mult");
        std::string digest = server.store().list().front().digest;
        std::string error;
        if (!server.listen(&error)) {
            std::fprintf(stderr, "bench_service: %s\n",
                         error.c_str());
            return 1;
        }
        ok = runLatencyPhase(digest, sock);
        server.drain();
    }
    fs::remove(sock);

    ok = runDrainPhase(compiled) && ok;
    if (!ok)
        return 1;

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
